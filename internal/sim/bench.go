package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/scenario"
	"diffgossip/internal/service"
	"diffgossip/internal/store"
	"diffgossip/internal/transport"
)

// BenchConfig parameterises the perf-trajectory benchmark that cmd/dgsim's
// -bench-json flag runs: one Fig3/Table2-class scalar workload at large N and
// two vector workloads (dense and sparse) at moderate N, each driven to
// convergence while measuring wall time, message overhead and heap
// allocations, plus one service-level workload measuring concurrent
// feedback-ingest and reputation-query throughput around an epoch recompute.
type BenchConfig struct {
	// N is the scalar workload size (default 10,000; Figure 3's upper
	// midrange).
	N int
	// VectorN is the vector workload size (default 1,000).
	VectorN int
	// ShardN is the sharded-service workload size (default 5,000) and
	// Shards its subject-shard count (default 20): the schema-v4 rows
	// measure epoch latency against the fraction of shards dirtied.
	ShardN int
	Shards int
	// Epsilon is the convergence bound (default 1e-3).
	Epsilon float64
	// Seed drives everything.
	Seed uint64
}

// BenchResult is one benchmark row of the perf report.
type BenchResult struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// Steps is the gossip steps the run took to converge.
	Steps int `json:"steps"`
	// NsPerStep is wall time divided by steps.
	NsPerStep float64 `json:"ns_per_step"`
	// MsgsPerNodePerStep is the paper's Table 2 overhead metric.
	MsgsPerNodePerStep float64 `json:"msgs_per_node_per_step"`
	// AllocsPerStep is heap allocations per steady-state gossip step:
	// engine construction, the first (scratch-warming) step and final
	// result assembly are all excluded, so the engines' zero-allocation
	// Step contract shows up as an exact 0 here.
	AllocsPerStep float64 `json:"allocs_per_step"`
	// Converged is false if the run hit its step budget instead.
	Converged bool `json:"converged"`
	// IngestPerSec and QueryPerSec are the service-level throughput numbers
	// (service rows only): feedback submissions and snapshot reads per
	// second under GOMAXPROCS concurrent clients.
	IngestPerSec float64 `json:"ingest_per_sec,omitempty"`
	QueryPerSec  float64 `json:"query_per_sec,omitempty"`
	// EpochNs is the wall-clock time of the service row's epoch recompute
	// (fold + gossip + publish); its gossip portion is Steps × NsPerStep.
	EpochNs float64 `json:"epoch_ns,omitempty"`
	// Events is the number of churn/fault events the churn-scenario row
	// executed (joins + crashes + leaves + rejoins).
	Events int `json:"events,omitempty"`
	// Shards, DirtyShards and FoldedSubjects describe the sharded-service
	// rows (schema v4): the subject-shard count, how many shards the
	// measured epoch had to fold, and how many per-subject campaigns
	// actually ran — EpochNs against DirtyShards/Shards is the
	// incrementality curve.
	Shards         int    `json:"shards,omitempty"`
	DirtyShards    int    `json:"dirty_shards,omitempty"`
	FoldedSubjects uint64 `json:"folded_subjects,omitempty"`
	// HintedEntries and ConvergeNs describe the cluster anti-entropy rows
	// (schema v5): the hinted-handoff backlog buffered while a replica was
	// dead, and the wall-clock time from its return to watermark agreement
	// (Steps is the synchronous exchange rounds that took).
	HintedEntries int     `json:"hinted_entries,omitempty"`
	ConvergeNs    float64 `json:"converge_ns,omitempty"`
	// Requests and the latency percentiles describe the http-latency row
	// (schema v6): successful HTTP requests measured, and client-side
	// per-request latency quantiles interpolated from a fixed-bucket
	// histogram.
	Requests int64 `json:"requests,omitempty"`
	P50Ns    int64 `json:"p50_ns,omitempty"`
	P95Ns    int64 `json:"p95_ns,omitempty"`
	P99Ns    int64 `json:"p99_ns,omitempty"`
	// History and Cells describe the bounded-storage rows (schema v7): the
	// lifetime append count a row's workload wrote and the distinct (rater,
	// subject) cells it touched. For bootstrap-time rows ConvergeNs is the
	// wall-clock from a fresh replica's first digest to watermark agreement —
	// flat across History is the O(state) claim. For wal-size rows
	// WalBytesBefore/WalBytesAfter are the ledger file sizes around one
	// compaction — WalBytesAfter tracking Cells, not History, is the bounded
	// WAL claim.
	History        int64 `json:"history,omitempty"`
	Cells          int   `json:"cells,omitempty"`
	WalBytesBefore int64 `json:"wal_bytes_before,omitempty"`
	WalBytesAfter  int64 `json:"wal_bytes_after,omitempty"`
	// TotalSteps, WarmStarts, ColdStarts, Cores and Speedup describe the
	// epoch-scaling rows (schema v8). TotalSteps is the summed campaign step
	// count of the measured epoch — the hardware-independent compute meter
	// the warm-vs-cold comparison is made on. WarmStarts/ColdStarts count how
	// many of the epoch's campaigns seeded from persisted state versus from
	// scratch. Cores is the GOMAXPROCS setting a cores row ran under and
	// Speedup its epoch-latency ratio against the cores=1 row (1.0 there by
	// construction); Speedup is only meaningful when the report's cpus field
	// shows at least that many hardware threads.
	TotalSteps int     `json:"total_steps,omitempty"`
	WarmStarts uint64  `json:"warm_starts,omitempty"`
	ColdStarts uint64  `json:"cold_starts,omitempty"`
	Cores      int     `json:"cores,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	// AcceptedRatings, ShedRequests and NotModified describe the
	// http-front-door rows (schema v9). AcceptedRatings counts ratings the
	// server answered 202 for — a batch contributes its whole batch — and
	// IngestPerSec on those rows is AcceptedRatings over wall time, so the
	// single-vs-batch comparison is per rating, not per request.
	// ShedRequests counts writes refused 429 by backpressure (overload=bp
	// only). NotModified counts conditional reads answered 304 on the
	// reads=conditional row; Requests and the latency percentiles on the
	// overload rows describe the concurrent READER workload, not the flood.
	AcceptedRatings int64 `json:"accepted_ratings,omitempty"`
	ShedRequests    int64 `json:"shed_requests,omitempty"`
	NotModified     int64 `json:"not_modified,omitempty"`
}

// BenchReport is the JSON document -bench-json emits (BENCH_1.json starts
// the trajectory; later PRs append BENCH_2.json and so on for comparison).
// Schema v2 extends v1 additively with the service row and its
// ingest/query-throughput fields; v3 adds the churn-scenario row (steps are
// scenario rounds, ns_per_step is scenario wall time per round including
// event application and invariant checks, events counts executed churn
// events); v4 adds the sharded-service rows — one epoch-latency measurement
// per dirty-shard fraction at large N, with shards/dirty_shards/
// folded_subjects recording how much of the subject space each epoch
// actually recomputed. Earlier rows are unchanged in shape; note the v4
// service epochs run the per-subject campaign pipeline, so service-row
// numbers are not directly comparable to v2/v3 runs. v5 adds the cluster
// anti-entropy rows — hinted-handoff catch-up time against the buffered
// backlog size, with hinted_entries/converge_ns recording each measurement;
// note the v5 WAL format carries LWW tags (unix_nano/origin/origin_seq,
// omitted when empty) on replicated entries, so ledgers and ingest numbers
// are not byte-comparable to v4 runs. v6 adds the http-latency row —
// per-request latency percentiles (requests/p50_ns/p95_ns/p99_ns) of the
// HTTP surface over a loopback socket, bridging the library-level service
// row and cmd/dgserve's -loadgen report. v7 adds the bounded-storage rows:
// cluster-bootstrap rows timing a fresh replica's snapshot-shipped join
// against a 10× spread of lifetime history (history/cells/converge_ns —
// flat in history), and wal-compaction rows recording the ledger file size
// around one compaction against the same spread (wal_bytes_before/
// wal_bytes_after — the after size tracks live cells, not appends). v8 adds
// the epoch-scaling rows and the report-level cpus field: warm rows run twin
// services (warm starts on versus off) through an identical 5%-dirty epoch
// and record total_steps/warm_starts/cold_starts — the steps ratio is the
// hardware-independent warm-start claim; cores rows time identical cold
// full-recompute epochs under GOMAXPROCS 1/2/4/all and record each row's
// speedup against the 1-core row. Speedups are only meaningful where cpus
// covers the core count — a 1-CPU host still emits the rows (CI gates its
// speedup assertion on cpus), and its steps ratio remains valid. v9 adds the
// http-front-door rows, all driven through the production ingress package
// (internal/httpapi) over a real loopback socket: ingest=single/ingest=batch
// compare accepted ratings per second for the same WAL-backed workload
// arriving one rating per POST versus 256 per batch (accepted_ratings,
// ingest_per_sec); overload=nobp/overload=bp record reader latency
// percentiles while batch writers flood, without and with the MaxPending
// backpressure window (shed_requests counts the 429s); reads=conditional
// records the If-None-Match path's 304 ratio (not_modified/requests); and
// cluster=3 runs a mixed single/batch workload with pinned LWW stamps across
// three federated front doors, timing anti-entropy to watermark agreement
// (converge_ns) and demanding bit-identical reputation dumps.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUs is runtime.NumCPU() on the generating host — readers gate any
	// parallel-speedup interpretation of the epoch-scaling cores rows on it.
	CPUs       int           `json:"cpus"`
	Seed       uint64        `json:"seed"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchStepBudget bounds a benchmark run that fails to converge.
const benchStepBudget = 1 << 17

// measureEngine drives step (one engine's Step method) to convergence and
// converts the observations into a BenchResult. The first step runs outside
// the timed window so one-time scratch growth is not charged to the
// steady-state numbers, and the engine's Run-time result assembly never runs
// at all — the window contains gossip steps and nothing else.
func measureEngine(name string, n int, step func() bool, msgs func() gossip.Messages) BenchResult {
	steps := 1
	running := step()
	var m0, m1 runtime.MemStats
	var elapsed time.Duration
	measured := 0
	if running {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for running && steps < benchStepBudget {
			running = step()
			steps++
			measured++
		}
		elapsed = time.Since(start)
		runtime.ReadMemStats(&m1)
	}
	res := BenchResult{Name: name, N: n, Steps: steps, Converged: !running}
	res.MsgsPerNodePerStep = msgs().PerNodePerStep(n, steps)
	if measured > 0 {
		res.NsPerStep = float64(elapsed.Nanoseconds()) / float64(measured)
		res.AllocsPerStep = float64(m1.Mallocs-m0.Mallocs) / float64(measured)
	}
	return res
}

// RunBench runs the benchmark suite and assembles the report.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	if cfg.N == 0 {
		cfg.N = 10000
	}
	if cfg.VectorN == 0 {
		cfg.VectorN = 1000
	}
	if cfg.ShardN == 0 {
		cfg.ShardN = 5000
	}
	if cfg.Shards == 0 {
		cfg.Shards = 20
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if err := checkPositive("network size", cfg.N); err != nil {
		return nil, err
	}
	if err := checkPositive("vector network size", cfg.VectorN); err != nil {
		return nil, err
	}
	if err := checkPositive("sharded network size", cfg.ShardN); err != nil {
		return nil, err
	}
	report := &BenchReport{
		Schema:     "diffgossip-bench/v9",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Seed:       cfg.Seed,
	}

	// Scalar engine, Fig3/Table2-class workload: average a value per node
	// over the PA overlay at large N.
	{
		g, err := buildPA(cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		xs := uniformValues(cfg.N, cfg.Seed+1)
		g0 := make([]float64, cfg.N)
		for i := range g0 {
			g0[i] = 1
		}
		e, err := gossip.NewEngine(gossip.Config{
			Graph: g, Epsilon: cfg.Epsilon, Seed: cfg.Seed + 2,
		}, xs, g0)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks,
			measureEngine(fmt.Sprintf("scalar-engine/N=%d", cfg.N), cfg.N, e.Step, e.Messages))
	}

	// Vector engine, dense: every node rates every subject.
	{
		res, err := benchVector(cfg, false)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Vector engine, sparse: 5% of subjects rated, exercising the
	// active-subject index.
	{
		res, err := benchVector(cfg, true)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Service layer: concurrent ingest and lock-free query throughput on
	// top of the vector engine, with one epoch recompute in between.
	{
		res, err := benchService(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Churn scenario: the acceptance-class workload — 10% crash + 10% join
	// over the run under 20% packet loss — timed end to end, per-round
	// invariant checks included.
	{
		res, err := benchChurn(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Sharded service (schema v4): epoch latency vs dirty-shard fraction at
	// large N — the incrementality curve of the subject-sharded pipeline.
	{
		rows, err := benchSharded(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, rows...)
	}

	// Cluster anti-entropy (schema v5): hinted-handoff catch-up time vs the
	// backlog buffered while a replica was dead.
	{
		rows, err := benchAntiEntropy(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, rows...)
	}

	// HTTP latency (schema v6): per-request latency percentiles of the HTTP
	// surface over a real loopback socket.
	{
		res, err := benchHTTPLatency(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}

	// Bounded storage (schema v7): fresh-replica bootstrap time vs lifetime
	// history length, and WAL size around one compaction vs the same spread.
	{
		rows, err := benchBootstrap(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, rows...)
		if rows, err = benchWalCompaction(cfg); err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, rows...)
	}

	// Epoch scaling (schema v8): warm-vs-cold campaign steps on an identical
	// dirty slice, and cold epoch latency against the core count.
	{
		rows, err := benchEpochScaling(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, rows...)
	}

	// HTTP front door (schema v9): batch-vs-single accepted throughput,
	// reader tail latency under a write flood with and without backpressure,
	// the conditional-read 304 path, and a 3-replica mixed workload — all
	// through the production ingress package.
	{
		rows, err := benchFrontDoor(cfg)
		if err != nil {
			return nil, err
		}
		report.Benchmarks = append(report.Benchmarks, rows...)
	}
	return report, nil
}

// benchEpochScaling measures the two schema-v8 claims of the warm-started,
// sparse campaign pipeline on one deterministic workload (every subject rated
// by the same 48 id-adjacent raters, so each campaign runs the sparse
// restricted-overlay path).
//
// Warm rows: twin services — one default, one NoWarmStart — ingest identical
// feedback, fold a seeding epoch, then both fold a measured epoch in which 5%
// of subjects received a fresh rating from an existing rater. Modulo shard
// placement makes that slice dirty every shard, so both services re-run every
// campaign and the rows' total_steps compare warm seeding against cold
// seeding on byte-identical work. The steps ratio is hardware-independent:
// it holds on a 1-CPU host exactly as on a 64-way box.
//
// Cores rows: the cold service folds further full-recompute epochs (every
// subject re-rated) with GOMAXPROCS pinned to 1, 2, 4 and every hardware
// thread, best of two epochs per setting; each row's Speedup is its latency
// ratio against the 1-core row. Rows are emitted regardless of the host's
// core count — readers (and CI) gate speedup interpretation on the report's
// cpus field.
func benchEpochScaling(cfg BenchConfig) ([]BenchResult, error) {
	n, shards := cfg.ShardN, cfg.Shards
	if shards > n {
		shards = n
	}
	raters := 48
	if raters > n-1 {
		raters = n - 1
	}
	g, err := buildPA(n, cfg.Seed+80)
	if err != nil {
		return nil, err
	}
	newSvc := func(noWarm bool) (*service.Service, error) {
		return service.New(service.Config{
			Graph:       g,
			Params:      core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 81, Workers: -1},
			Shards:      shards,
			FoldWorkers: -1,
			NoWarmStart: noWarm,
		})
	}
	svcWarm, err := newSvc(false)
	if err != nil {
		return nil, err
	}
	defer svcWarm.Close()
	svcCold, err := newSvc(true)
	if err != nil {
		return nil, err
	}
	defer svcCold.Close()
	pair := []*service.Service{svcWarm, svcCold}

	// Identical feedback to both services; subject j's raters are the ids
	// just above it, which never include j itself while raters < n.
	src := rng.New(cfg.Seed + 82)
	rate := func(svcs []*service.Service, j, i int) error {
		v := src.Float64()
		for _, svc := range svcs {
			if _, err := svc.Submit((j+1+i)%n, j, v); err != nil {
				return err
			}
		}
		return nil
	}

	// Seeding epoch (unmeasured): rate every subject fully and fold, so the
	// warm service holds converged campaign state for the whole subject space.
	for j := 0; j < n; j++ {
		for i := 0; i < raters; i++ {
			if err := rate(pair, j, i); err != nil {
				return nil, err
			}
		}
	}
	for _, svc := range pair {
		if _, _, err := svc.RunEpoch(); err != nil {
			return nil, err
		}
	}

	// Measured 5%-dirty epoch on each twin: one fresh rating per dirty
	// subject, from a rater the subject already has — rater sets are
	// unchanged, so every warm campaign stays warm-eligible.
	dirty := n / 20
	if dirty < 1 {
		dirty = 1
	}
	for j := 0; j < dirty; j++ {
		if err := rate(pair, j, 0); err != nil {
			return nil, err
		}
	}
	var rows []BenchResult
	for _, svc := range pair {
		mode := "on"
		if svc == svcCold {
			mode = "off"
		}
		warmBefore, coldBefore := svc.WarmStarts(), svc.ColdStarts()
		foldedBefore := svc.FoldedSubjects()
		start := time.Now()
		view, ran, err := svc.RunEpoch()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if !ran {
			return nil, fmt.Errorf("bench: epoch-scaling warm=%s epoch had nothing to fold", mode)
		}
		rows = append(rows, BenchResult{
			Name:           fmt.Sprintf("epoch-scaling/warm=%s/dirty=5%%", mode),
			N:              n,
			Steps:          view.Steps(),
			Converged:      view.Converged(),
			EpochNs:        float64(elapsed.Nanoseconds()),
			Shards:         shards,
			FoldedSubjects: svc.FoldedSubjects() - foldedBefore,
			TotalSteps:     view.TotalSteps(),
			WarmStarts:     svc.WarmStarts() - warmBefore,
			ColdStarts:     svc.ColdStarts() - coldBefore,
		})
	}

	// Cores rows on the cold twin: full-recompute epochs under a pinned
	// GOMAXPROCS, best of two per setting to damp scheduler noise.
	counts := []int{1, 2, 4}
	if all := runtime.NumCPU(); all > counts[len(counts)-1] {
		counts = append(counts, all)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	base := 0.0
	for _, c := range counts {
		var best time.Duration
		var view *service.View
		var folded, coldStarts uint64
		for rep := 0; rep < 2; rep++ {
			for j := 0; j < n; j++ {
				if err := rate([]*service.Service{svcCold}, j, 0); err != nil {
					return nil, err
				}
			}
			coldBefore := svcCold.ColdStarts()
			foldedBefore := svcCold.FoldedSubjects()
			runtime.GOMAXPROCS(c)
			start := time.Now()
			v, ran, err := svcCold.RunEpoch()
			elapsed := time.Since(start)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				return nil, err
			}
			if !ran {
				return nil, fmt.Errorf("bench: epoch-scaling cores=%d epoch had nothing to fold", c)
			}
			if rep == 0 || elapsed < best {
				best, view = elapsed, v
				folded = svcCold.FoldedSubjects() - foldedBefore
				coldStarts = svcCold.ColdStarts() - coldBefore
			}
		}
		if base == 0 {
			base = float64(best.Nanoseconds())
		}
		rows = append(rows, BenchResult{
			Name:           fmt.Sprintf("epoch-scaling/cores=%d", c),
			N:              n,
			Steps:          view.Steps(),
			Converged:      view.Converged(),
			EpochNs:        float64(best.Nanoseconds()),
			Shards:         shards,
			FoldedSubjects: folded,
			TotalSteps:     view.TotalSteps(),
			ColdStarts:     coldStarts,
			Cores:          c,
			Speedup:        base / float64(best.Nanoseconds()),
		})
	}
	return rows, nil
}

// benchBootstrap measures the O(state) join claim: an established node folds
// and trims a workload whose live state (cell count) is fixed while its
// lifetime history spans 10×, then a fresh replica joins through the
// snapshot-shipped bootstrap and the row times first digest → watermark
// agreement. If bootstrap really ships state rather than history, the two
// rows' converge_ns are flat (within noise) across the spread.
func benchBootstrap(cfg BenchConfig) ([]BenchResult, error) {
	const n = 96
	const cells = 512
	g, err := buildPA(n, cfg.Seed+70)
	if err != nil {
		return nil, err
	}
	var rows []BenchResult
	for _, history := range []int{1500, 15000} {
		row, err := benchBootstrapRow(cfg, g, n, cells, history)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func benchBootstrapRow(cfg BenchConfig, g *graph.Graph, n, cells, history int) (BenchResult, error) {
	newSvc := func(origin string) (*service.Service, error) {
		return service.New(service.Config{
			Graph:          g,
			Params:         core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 71, Workers: 1},
			Shards:         4,
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         origin,
		})
	}
	svcA, err := newSvc("bench-a")
	if err != nil {
		return BenchResult{}, err
	}
	defer svcA.Close()
	// Fixed live state, variable history: k-th append rewrites cell k mod
	// cells, so every row folds the same cell set regardless of history.
	src := rng.New(cfg.Seed + 72)
	for k := 0; k < history; k++ {
		c := k % cells
		rater, subject := c%(n/2), n/2+c/(n/2)%(n/2)
		if _, err := svcA.SubmitAt(rater, subject, src.Float64(), int64(k+1)); err != nil {
			return BenchResult{}, err
		}
		if (k+1)%(history/4) == 0 {
			if _, _, err := svcA.RunEpoch(); err != nil {
				return BenchResult{}, err
			}
		}
	}
	if _, _, err := svcA.RunEpoch(); err != nil {
		return BenchResult{}, err
	}
	// A lone node's trim floors are its own marks; after the trim the
	// retained suffix — and therefore the transfer — is O(cells).
	svcA.TrimReplicationHistory(map[string]uint64{"bench-a": svcA.LocalStreamMark()})

	// Timed: a fresh replica's join, first digest through watermark
	// agreement. Best of three keeps scheduler noise out of the flatness
	// comparison CI makes across rows.
	var best time.Duration
	rounds := 0
	for rep := 0; rep < 3; rep++ {
		hub := transport.NewHub()
		epA, err := hub.Endpoint("bench-a")
		if err != nil {
			return BenchResult{}, err
		}
		nodeA, err := cluster.New(cluster.Config{Service: svcA, Transport: epA, Peers: []string{"bench-b"}})
		if err != nil {
			return BenchResult{}, err
		}
		svcB, err := newSvc("bench-b")
		if err != nil {
			return BenchResult{}, err
		}
		epB, err := hub.Endpoint("bench-b")
		if err != nil {
			return BenchResult{}, err
		}
		nodeB, err := cluster.New(cluster.Config{Service: svcB, Transport: epB, Peers: []string{"bench-a"}, BootstrapLag: 1})
		if err != nil {
			return BenchResult{}, err
		}
		rounds = 0
		start := time.Now()
		for nodeB.Stats().Marks["bench-a"] < svcA.LocalStreamMark() {
			nodeA.Exchange()
			for pass := 0; pass < 2; pass++ {
				nodeB.Drain()
				nodeA.Drain()
			}
			rounds++
			if rounds > 64 {
				return BenchResult{}, fmt.Errorf("bench: bootstrap never converged at history %d", history)
			}
		}
		elapsed := time.Since(start)
		if st := nodeB.Stats(); st.BootstrapsInstalled != 1 || st.BootstrapErrors != 0 {
			return BenchResult{}, fmt.Errorf("bench: bootstrap at history %d went through entry replay: %+v", history, st)
		}
		nodeA.Close()
		nodeB.Close()
		epA.Close()
		epB.Close()
		svcB.Close()
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	row := BenchResult{
		Name:       fmt.Sprintf("cluster-bootstrap/history=%d", history),
		N:          n,
		Steps:      rounds,
		Converged:  true,
		History:    int64(history),
		Cells:      cells,
		ConvergeNs: float64(best.Nanoseconds()),
	}
	row.NsPerStep = row.ConvergeNs / float64(rounds)
	return row, nil
}

// benchWalCompaction records the ledger file size around one compaction for a
// fixed live cell set under a 10× history spread: the before size grows with
// appends, the after size tracks the cell count plus the unfolded tail.
func benchWalCompaction(cfg BenchConfig) ([]BenchResult, error) {
	const n = 32
	const cells = 256
	g, err := buildPA(n, cfg.Seed+75)
	if err != nil {
		return nil, err
	}
	var rows []BenchResult
	for _, history := range []int{2000, 20000} {
		dir, err := os.MkdirTemp("", "dgbench-wal-*")
		if err != nil {
			return nil, err
		}
		row, err := benchWalRow(cfg, g, dir, n, cells, history)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func benchWalRow(cfg BenchConfig, g *graph.Graph, dir string, n, cells, history int) (BenchResult, error) {
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 76, Workers: 1},
		Dir:    dir,
		Shards: 4,
	})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()
	src := rng.New(cfg.Seed + 77)
	for k := 0; k < history; k++ {
		c := k % cells
		rater, subject := c%(n/2), n/2+c/(n/2)%(n/2)
		if _, err := svc.SubmitAt(rater, subject, src.Float64(), int64(k+1)); err != nil {
			return BenchResult{}, err
		}
	}
	if _, _, err := svc.RunEpoch(); err != nil {
		return BenchResult{}, err
	}
	st, err := svc.CompactWAL()
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:           fmt.Sprintf("wal-compaction/history=%d", history),
		N:              n,
		Converged:      true,
		History:        int64(history),
		Cells:          cells,
		WalBytesBefore: st.BytesBefore,
		WalBytesAfter:  st.BytesAfter,
	}, nil
}

// benchAntiEntropy measures the recovery path the membership layer adds: a
// two-node cluster, one node dead (on a logical clock, so no real waiting)
// while the other ingests a backlog that buffers as hints, then the dead
// node returns and the row times the catch-up — hint replay plus watermark
// agreement — against the backlog size. The curve should be near-linear in
// the backlog: replay is a straight queue drain, and the pull only patches
// what replay already delivered.
func benchAntiEntropy(cfg BenchConfig) ([]BenchResult, error) {
	const n = 128
	g, err := buildPA(n, cfg.Seed+50)
	if err != nil {
		return nil, err
	}
	var rows []BenchResult
	for _, backlog := range []int{512, 2048, 8192} {
		row, err := benchHandoffRow(cfg, g, n, backlog)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// benchHandoffRow runs one dead-window/catch-up measurement at a fixed
// backlog. Membership runs on a locally advanced logical clock, so the
// suspect → dead transitions are instantaneous rather than timer-driven.
func benchHandoffRow(cfg BenchConfig, g *graph.Graph, n, backlog int) (BenchResult, error) {
	hub := transport.NewHub()
	var clock int64
	newSvc := func(origin string) (*service.Service, error) {
		return service.New(service.Config{
			Graph:          g,
			Params:         core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 51, Workers: 1},
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         origin,
		})
	}
	attach := func(svc *service.Service, name string, inc uint64, seeds []string) (*cluster.Node, *transport.ChannelTransport, error) {
		ep, err := hub.Endpoint(name)
		if err != nil {
			return nil, nil, err
		}
		node, err := cluster.New(cluster.Config{
			Service: svc, Transport: ep, Peers: seeds,
			Now: func() int64 { return clock }, Incarnation: inc,
			SuspectAfter: 3, DeadAfter: 6, MaxHintEntries: backlog,
		})
		if err != nil {
			ep.Close()
			return nil, nil, err
		}
		return node, ep, nil
	}
	svcA, err := newSvc("bench-a")
	if err != nil {
		return BenchResult{}, err
	}
	defer svcA.Close()
	svcB, err := newSvc("bench-b")
	if err != nil {
		return BenchResult{}, err
	}
	defer svcB.Close()
	nodeA, epA, err := attach(svcA, "bench-a", 1, []string{"bench-b"})
	if err != nil {
		return BenchResult{}, err
	}
	defer epA.Close()
	defer nodeA.Close()
	nodeB, epB, err := attach(svcB, "bench-b", 1, []string{"bench-a"})
	if err != nil {
		return BenchResult{}, err
	}

	// One full exchange so each side caches the other's watermarks — the
	// push (and hint) framing baseline.
	clock++
	nodeA.Exchange()
	nodeB.Exchange()
	nodeA.Drain()
	nodeB.Drain()

	// B dies; A ingests the backlog and, once B crosses the dead threshold,
	// buffers it as hints batch by batch.
	epB.Close()
	nodeB.Close()
	src := rng.New(cfg.Seed + 52)
	for k := 0; k < backlog; k++ {
		if _, err := svcA.SubmitAt(src.Intn(n), src.Intn(n), src.Float64(), int64(k+1)); err != nil {
			return BenchResult{}, err
		}
	}
	clock += 10
	for hinted := 0; hinted < backlog; {
		nodeA.Exchange()
		st := nodeA.Stats()
		if st.HintsDropped > 0 {
			return BenchResult{}, fmt.Errorf("bench: hint queue overflowed at backlog %d", backlog)
		}
		if st.HintedEntries <= hinted {
			return BenchResult{}, fmt.Errorf("bench: hint buffering stalled at %d/%d", hinted, backlog)
		}
		hinted = st.HintedEntries
	}

	// B returns; the timed window covers its first digest through watermark
	// agreement.
	nodeB2, epB2, err := attach(svcB, "bench-b", 2, []string{"bench-a"})
	if err != nil {
		return BenchResult{}, err
	}
	defer epB2.Close()
	defer nodeB2.Close()
	rounds := 0
	start := time.Now()
	for svcB.ReplicationMark("bench-a") < uint64(backlog) {
		clock++
		nodeB2.Exchange()
		nodeA.Exchange()
		for pass := 0; pass < 2; pass++ {
			nodeA.Drain()
			nodeB2.Drain()
		}
		rounds++
		if rounds > backlog {
			return BenchResult{}, fmt.Errorf("bench: handoff catch-up never converged at backlog %d", backlog)
		}
	}
	elapsed := time.Since(start)
	row := BenchResult{
		Name:          fmt.Sprintf("cluster-antientropy/backlog=%d", backlog),
		N:             n,
		Steps:         rounds,
		Converged:     true,
		HintedEntries: backlog,
		ConvergeNs:    float64(elapsed.Nanoseconds()),
	}
	row.NsPerStep = row.ConvergeNs / float64(rounds)
	return row, nil
}

// benchSharded measures the sharded epoch pipeline: one full-dirty epoch,
// then epochs touching progressively fewer shards, on one long-lived
// service. Each row's EpochNs is the wall-clock RunEpoch latency and
// FoldedSubjects the campaigns that epoch actually ran — the curve should
// fall roughly linearly with the dirty fraction, i.e. clean shards cost
// nothing.
func benchSharded(cfg BenchConfig) ([]BenchResult, error) {
	n, shards := cfg.ShardN, cfg.Shards
	if shards > n {
		shards = n
	}
	g, err := buildPA(n, cfg.Seed+40)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 41, Workers: -1},
		Shards: shards,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	src := rng.New(cfg.Seed + 42)
	// Rate every subject once up front so later folds recompute full shards.
	submitShardRange := func(dirtyShards int) error {
		for j := 0; j < n; j++ {
			if store.ShardOf(j, shards) >= dirtyShards {
				continue
			}
			rater := src.Intn(n - 1)
			if rater >= j {
				rater++
			}
			if _, err := svc.Submit(rater, j, src.Float64()); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm-up epoch (unmeasured): rate every subject and fold once, so the
	// measured epochs all recompute comparably-sized columns — otherwise the
	// full-dirty row would fold cheaper first-rating campaigns than the
	// incremental rows and skew the curve.
	if err := submitShardRange(shards); err != nil {
		return nil, err
	}
	if _, _, err := svc.RunEpoch(); err != nil {
		return nil, err
	}

	var rows []BenchResult
	for _, frac := range []float64{1, 0.25, 0.05} {
		dirty := int(float64(shards)*frac + 0.5)
		if dirty < 1 {
			dirty = 1
		}
		if err := submitShardRange(dirty); err != nil {
			return nil, err
		}
		before := svc.FoldedSubjects()
		start := time.Now()
		view, ran, err := svc.RunEpoch()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if !ran {
			return nil, fmt.Errorf("bench: sharded epoch had nothing to fold")
		}
		rows = append(rows, BenchResult{
			Name:           fmt.Sprintf("sharded-service/N=%d/S=%d/dirty=%d", n, shards, dirty),
			N:              n,
			Steps:          view.Steps(),
			Converged:      view.Converged(),
			EpochNs:        float64(elapsed.Nanoseconds()),
			Shards:         shards,
			DirtyShards:    dirty,
			FoldedSubjects: svc.FoldedSubjects() - before,
		})
	}
	return rows, nil
}

// benchChurn times one deterministic churn scenario on the scalar engine.
func benchChurn(cfg BenchConfig) (BenchResult, error) {
	sc := scenario.Config{
		Target:   scenario.TargetScalar,
		N:        cfg.N,
		Rounds:   300,
		Epsilon:  cfg.Epsilon,
		LossProb: 0.2,
		Seed:     cfg.Seed + 30,
		Plan:     scenario.Plan{CrashFrac: 0.1, JoinFrac: 0.1},
	}
	start := time.Now()
	res, err := scenario.Run(sc)
	if err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start)
	if len(res.Violations) > 0 {
		return BenchResult{}, fmt.Errorf("bench: churn scenario violated invariants: %s", res.Violations[0])
	}
	out := BenchResult{
		Name:      fmt.Sprintf("churn-scenario/N=%d", cfg.N),
		N:         cfg.N,
		Steps:     res.Rounds,
		Converged: res.Converged,
		Events:    res.Joins + res.Crashes + res.Leaves + res.Rejoins,
	}
	out.MsgsPerNodePerStep = res.Messages.PerNodePerStep(res.N, res.Rounds)
	if res.Rounds > 0 {
		out.NsPerStep = float64(elapsed.Nanoseconds()) / float64(res.Rounds)
	}
	return out, nil
}

// benchService measures the reputation service end to end at the library
// level (cmd/dgserve's -loadgen measures the HTTP stack on top of this):
// GOMAXPROCS writers hammer Submit, one epoch folds the backlog and runs the
// vector-gossip recompute, then GOMAXPROCS readers hammer the published
// snapshot with global and personalised queries. Reads never touch a lock,
// so QueryPerSec reflects pure snapshot evaluation cost.
func benchService(cfg BenchConfig) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+20)
	if err != nil {
		return BenchResult{}, err
	}
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: cfg.Epsilon, Seed: cfg.Seed + 21, Workers: -1},
	})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()

	workers := runtime.GOMAXPROCS(0)
	perWorker := 25 * n / workers
	run := func(op func(src *rng.Source)) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src := rng.New(cfg.Seed + 30 + uint64(w))
				for i := 0; i < perWorker; i++ {
					op(src)
				}
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}

	ingestElapsed := run(func(src *rng.Source) {
		if _, err := svc.Submit(src.Intn(n), src.Intn(n), src.Float64()); err != nil {
			panic(err) // ids and values are in range by construction
		}
	})
	totalOps := float64(workers * perWorker)

	view, ran, err := svc.RunEpoch()
	if err != nil {
		return BenchResult{}, err
	}
	if !ran {
		return BenchResult{}, fmt.Errorf("bench: service epoch had nothing to fold")
	}

	queryElapsed := run(func(src *rng.Source) {
		j := src.Intn(n)
		if src.Bool(0.25) { // every fourth read asks for the GCLR view
			if _, _, err := svc.PersonalReputation(src.Intn(n), j); err != nil {
				panic(err)
			}
		} else if _, _, err := svc.Reputation(j); err != nil {
			panic(err)
		}
	})

	res := BenchResult{
		Name:         fmt.Sprintf("service/N=%d", n),
		N:            n,
		Steps:        view.Steps(),
		Converged:    view.Converged(),
		IngestPerSec: totalOps / ingestElapsed.Seconds(),
		QueryPerSec:  totalOps / queryElapsed.Seconds(),
		EpochNs:      float64(view.ElapsedNs()),
	}
	if view.Steps() > 0 {
		res.NsPerStep = float64(view.ElapsedNs()) / float64(view.Steps())
	}
	return res, nil
}

func benchVector(cfg BenchConfig, sparse bool) (BenchResult, error) {
	n := cfg.VectorN
	g, err := buildPA(n, cfg.Seed+10)
	if err != nil {
		return BenchResult{}, err
	}
	src := rng.New(cfg.Seed + 11)
	y0 := make([][]float64, n)
	g0 := make([][]float64, n)
	buf := make([]float64, 2*n*n)
	for i := 0; i < n; i++ {
		y0[i] = buf[2*i*n : (2*i+1)*n]
		g0[i] = buf[(2*i+1)*n : (2*i+2)*n]
	}
	stride := 1
	name := fmt.Sprintf("vector-engine/N=%d", n)
	if sparse {
		stride = 20
		name = fmt.Sprintf("vector-engine-sparse/N=%d", n)
	}
	for j := 0; j < n; j += stride {
		for i := 0; i < n; i++ {
			y0[i][j] = src.Float64()
			g0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(gossip.Config{
		Graph: g, Epsilon: cfg.Epsilon, Seed: cfg.Seed + 12,
	}, y0, g0)
	if err != nil {
		return BenchResult{}, err
	}
	return measureEngine(name, n, e.Step, e.Messages), nil
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
