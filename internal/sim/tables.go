package sim

import (
	"math"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
)

func log2(x float64) float64 { return math.Log2(x) }

// Table1Config parameterises the §4.2 worked example.
type Table1Config struct {
	// Iterations is how many gossip steps to tabulate (the paper shows 8).
	Iterations int
	// Seed draws the nodes' initial direct-trust values.
	Seed uint64
}

// Table1Result reproduces the paper's Table 1 on the Figure 2 topology.
type Table1Result struct {
	// Degrees and Ks echo the topology rows of the paper's table.
	Degrees []int
	Ks      []int
	// Initial holds the per-node starting values y_i (the paper's table
	// begins at itr=1, i.e. after one step).
	Initial []float64
	// Values[it][i] is node i's aggregated value after iteration it+1.
	Values [][]float64
	// TrueMean is the average the values converge to.
	TrueMean float64
}

// RunTable1 regenerates Table 1: differential gossip averaging on the fixed
// 10-node example network. The paper's exact digits depend on its (unstated)
// initial trust values and random choices; the reproduced table preserves the
// structure — same topology, same degree and k rows, convergence to the
// common mean within the same number of iterations.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 8
	}
	g := graph.Figure2()
	n := g.N()
	xs := uniformValues(n, cfg.Seed)
	res := &Table1Result{
		Degrees: g.Degrees(),
		Ks:      g.DifferentialKs(),
		Initial: xs,
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	res.TrueMean = sum / float64(n)

	g0 := make([]float64, n)
	for i := range g0 {
		g0[i] = 1
	}
	e, err := gossip.NewEngine(gossip.Config{
		Graph:   g,
		Epsilon: 1e-9, // effectively: run the full Iterations budget
		Seed:    cfg.Seed + 1,
	}, xs, g0)
	if err != nil {
		return nil, err
	}
	for it := 0; it < cfg.Iterations; it++ {
		e.Step()
		res.Values = append(res.Values, e.Estimates())
	}
	return res, nil
}

// Table2Config parameterises the message-overhead table.
type Table2Config struct {
	// Sizes is the N sweep; default DefaultSizes.
	Sizes []int
	// Epsilons is the ξ sweep; default DefaultEpsilons.
	Epsilons []float64
	// Protocol is the push rule measured (default differential).
	Protocol gossip.Protocol
	// Seed drives everything.
	Seed uint64
	// Workers spreads the size sweep across goroutines; 0 (or negative)
	// selects GOMAXPROCS, 1 runs sequentially. Results are identical
	// either way. (Note: gossip.Config.Workers uses the opposite
	// convention — there 0 is sequential and negative is GOMAXPROCS.)
	Workers int
}

// Table2Row is one cell of Table 2.
type Table2Row struct {
	N               int
	Epsilon         float64
	MessagesPerStep float64 // messages per node per gossip step, amortised
	Steps           int
	Converged       bool
}

// RunTable2 regenerates Table 2: the amortised number of message transfers
// per node per gossip step (setup pushes + gossip pushes + convergence
// announcements, divided by N × steps). The unit of parallel work is one
// network size: the cell builds its graph once and measures every ξ on it,
// with seeds split per cell so results are bit-identical for any worker
// count (see the determinism note at the top of figures.go).
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = DefaultEpsilons
	}
	for _, n := range cfg.Sizes {
		if err := checkPositive("network size", n); err != nil {
			return nil, err
		}
	}
	ne := len(cfg.Epsilons)
	seeds := splitSeeds(cfg.Seed, len(cfg.Sizes))
	rows := make([]Table2Row, len(cfg.Sizes)*ne)
	err := forEachCell(cfg.Workers, len(cfg.Sizes), func(cell int) error {
		n := cfg.Sizes[cell]
		cs := seeds[cell]
		g, err := buildPA(n, cs.graph)
		if err != nil {
			return err
		}
		xs := uniformValues(n, cs.values)
		for ei, eps := range cfg.Epsilons {
			res, err := gossip.Average(gossip.Config{
				Graph:    g,
				Protocol: cfg.Protocol,
				Epsilon:  eps,
				Seed:     cs.gossip,
			}, xs)
			if err != nil {
				return err
			}
			rows[cell*ne+ei] = Table2Row{
				N:               n,
				Epsilon:         eps,
				MessagesPerStep: res.Messages.PerNodePerStep(n, res.Steps),
				Steps:           res.Steps,
				Converged:       res.Converged,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
