package collusion

import (
	"math"
	"testing"
	"testing/quick"

	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

func workload(t *testing.T, n int, seed uint64) (*graph.Graph, *trust.Matrix) {
	t.Helper()
	g := graph.MustPA(n, 2, seed)
	w, err := trust.GenerateWorkload(trust.WorkloadConfig{
		N: n, Density: 0.3, NeighborDensity: 1, Adjacent: g.HasEdge, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, w.Matrix
}

func TestModelValidate(t *testing.T) {
	bad := []Model{
		{N: 0, Fraction: 0.1, GroupSize: 1},
		{N: 10, Fraction: -0.1, GroupSize: 1},
		{N: 10, Fraction: 1.5, GroupSize: 1},
		{N: 10, Fraction: 0.1, GroupSize: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", m)
		}
	}
	if err := (Model{N: 10, Fraction: 0.3, GroupSize: 5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignCounts(t *testing.T) {
	m := Model{N: 100, Fraction: 0.3, GroupSize: 7, Seed: 1}
	a, err := m.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NumColluders(); got != 30 {
		t.Fatalf("colluders = %d, want 30", got)
	}
	// Groups: ceil(30/7) = 5, sizes 7,7,7,7,2.
	if len(a.Members) != 5 {
		t.Fatalf("groups = %d, want 5", len(a.Members))
	}
	total := 0
	for gi, mem := range a.Members {
		if len(mem) > 7 {
			t.Fatalf("group %d oversize: %d", gi, len(mem))
		}
		total += len(mem)
		for _, id := range mem {
			if !a.Colluder[id] || a.Group[id] != gi {
				t.Fatalf("membership inconsistent for node %d", id)
			}
		}
	}
	if total != 30 {
		t.Fatalf("group membership total = %d", total)
	}
	for i, isC := range a.Colluder {
		if !isC && a.Group[i] != -1 {
			t.Fatalf("honest node %d has group %d", i, a.Group[i])
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	m := Model{N: 200, Fraction: 0.2, GroupSize: 5, Seed: 9}
	a1, _ := m.Assign()
	a2, _ := m.Assign()
	for i := range a1.Colluder {
		if a1.Colluder[i] != a2.Colluder[i] {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestAssignZeroFraction(t *testing.T) {
	a, err := Model{N: 50, Fraction: 0, GroupSize: 3, Seed: 2}.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumColluders() != 0 || len(a.Members) != 0 {
		t.Fatalf("zero-fraction assignment has colluders: %+v", a)
	}
}

func TestReportedSemantics(t *testing.T) {
	_, tm := workload(t, 40, 10)
	a, err := Model{N: 40, Fraction: 0.25, GroupSize: 5, Seed: 11}.Assign()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Reported(tm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if !a.Colluder[i] {
			// Honest rows identical.
			for j, v := range tm.Row(i) {
				if rep.Value(i, j) != v {
					t.Fatalf("honest row %d changed at %d", i, j)
				}
			}
			if rep.NumEntries() == 0 {
				t.Fatal("reported matrix empty")
			}
			continue
		}
		for j := 0; j < 40; j++ {
			if j == i {
				if rep.Has(i, j) {
					t.Fatalf("colluder %d rated itself", i)
				}
				continue
			}
			groupMate := a.Colluder[j] && a.Group[j] == a.Group[i]
			got, has := rep.Get(i, j)
			switch {
			case groupMate:
				if !has || got != 1 {
					t.Fatalf("colluder %d report about groupmate %d = %v,%v, want 1", i, j, got, has)
				}
			case tm.Has(i, j):
				if !has || got != 0 {
					t.Fatalf("colluder %d must zero out rating of %d, got %v,%v", i, j, got, has)
				}
			default:
				if has {
					t.Fatalf("colluder %d invented rater status for %d", i, j)
				}
			}
		}
	}
}

func TestReportedSizeMismatch(t *testing.T) {
	a, _ := Model{N: 10, Fraction: 0.2, GroupSize: 2, Seed: 3}.Assign()
	if _, err := a.Reported(trust.NewMatrix(9)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestExpectedDeltaOldSigns(t *testing.T) {
	// For a subject outside every colluding group with colluders holding
	// honest trust about it, the delta is Σ t_ij/N − GC/N²; with zero
	// honest colluder trust it is strictly negative (pure suppression).
	n := 50
	tm := trust.NewMatrix(n)
	a, err := Model{N: n, Fraction: 0.4, GroupSize: 5, Seed: 4}.Assign()
	if err != nil {
		t.Fatal(err)
	}
	d := ExpectedDeltaOld(tm, a, 0)
	if d >= 0 {
		t.Fatalf("delta = %v, want negative for empty honest trust", d)
	}
	want := -5.0 * 20.0 / (50.0 * 50.0)
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("delta = %v, want %v", d, want)
	}
}

func TestDampingFactorBounds(t *testing.T) {
	g, tm := workload(t, 60, 20)
	p := trust.DefaultWeightParams
	f := func(seed uint64) bool {
		o := int(seed % 60)
		d := DampingFactor(tm, o, g.Neighbors(o), p)
		return d > 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDampingFactorIsOneWithUnitWeights(t *testing.T) {
	g, tm := workload(t, 30, 21)
	p := trust.WeightParams{A: 1, B: 1} // a=1 -> every weight is 1
	if d := DampingFactor(tm, 0, g.Neighbors(0), p); d != 1 {
		t.Fatalf("unit-weight damping = %v, want 1", d)
	}
}

func TestExpectedDeltaNewDamped(t *testing.T) {
	g, tm := workload(t, 80, 22)
	a, err := Model{N: 80, Fraction: 0.3, GroupSize: 4, Seed: 23}.Assign()
	if err != nil {
		t.Fatal(err)
	}
	p := trust.DefaultWeightParams
	// Pick an observer that actually trusts some neighbours.
	obs := -1
	for i := 0; i < 80; i++ {
		if len(tm.Row(i)) > 0 {
			obs = i
			break
		}
	}
	if obs < 0 {
		t.Skip("workload produced no trusting observer")
	}
	oldD := ExpectedDeltaOld(tm, a, 5)
	newD := ExpectedDeltaNew(tm, a, obs, 5, g.Neighbors(obs), p)
	if math.Abs(newD) > math.Abs(oldD) {
		t.Fatalf("weighted delta %v larger than unweighted %v", newD, oldD)
	}
}
