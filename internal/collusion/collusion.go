// Package collusion implements the attack model of the paper's §5.2 and the
// machinery behind Figures 5 and 6: a subset C of nodes colludes in groups of
// size G; inside a group members report each other's reputation as 1, and
// they report 0 for everyone outside. Collusion only affects the values
// pushed into the gossip phase — direct experience and neighbour feedback
// stay honest, matching the paper's assumptions.
package collusion

import (
	"fmt"
	"math"

	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

// Model describes one collusion scenario.
type Model struct {
	// N is the network size.
	N int
	// Fraction is |C|/N, the colluding share of the population.
	Fraction float64
	// GroupSize is G; 1 models individual colluders (Figure 6).
	GroupSize int
	// Seed places the colluders deterministically.
	Seed uint64
}

// Validate rejects impossible scenarios.
func (m Model) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("collusion: N=%d", m.N)
	}
	if m.Fraction < 0 || m.Fraction > 1 {
		return fmt.Errorf("collusion: fraction %v out of [0,1]", m.Fraction)
	}
	if m.GroupSize < 1 {
		return fmt.Errorf("collusion: group size %d < 1", m.GroupSize)
	}
	return nil
}

// Assignment is a concrete placement of colluders.
type Assignment struct {
	// Colluder[i] reports whether node i colludes.
	Colluder []bool
	// Group[i] is the colluding group id of node i, or -1.
	Group []int
	// Members[g] lists the members of group g.
	Members [][]int
}

// NumColluders returns |C|.
func (a *Assignment) NumColluders() int {
	c := 0
	for _, b := range a.Colluder {
		if b {
			c++
		}
	}
	return c
}

// Assign samples the colluding set and partitions it into groups of
// Model.GroupSize (the last group may be smaller).
func (m Model) Assign() (*Assignment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(m.Seed)
	c := int(math.Round(m.Fraction * float64(m.N)))
	ids := src.Sample(m.N, c)
	a := &Assignment{
		Colluder: make([]bool, m.N),
		Group:    make([]int, m.N),
	}
	for i := range a.Group {
		a.Group[i] = -1
	}
	for idx, id := range ids {
		g := idx / m.GroupSize
		a.Colluder[id] = true
		a.Group[id] = g
		for g >= len(a.Members) {
			a.Members = append(a.Members, nil)
		}
		a.Members[g] = append(a.Members[g], id)
	}
	return a, nil
}

// Reported builds the matrix of values the network will gossip, exactly as
// the paper's expectation analysis (eqs. 9–10) models the attack:
//
//   - honest nodes report their true direct trust;
//   - a colluder replaces every rating it actually holds with 0 (its honest
//     contribution Σ_{i∈C} t_ij vanishes from eq. 9's numerator);
//   - a colluder additionally reports 1 for every member of its own group
//     (the +G term of eq. 10).
//
// Colluders do not invent rater status for unrelated subjects — that keeps
// the rater-count denominator comparable between the honest and attacked
// runs, as eq. (11) assumes a fixed denominator N.
func (a *Assignment) Reported(honest *trust.Matrix) (*trust.Matrix, error) {
	n := honest.N()
	if len(a.Colluder) != n {
		return nil, fmt.Errorf("collusion: assignment over %d nodes, matrix over %d", len(a.Colluder), n)
	}
	out := trust.NewMatrix(n)
	for i := 0; i < n; i++ {
		if !a.Colluder[i] {
			for j, v := range honest.Row(i) {
				if err := out.Set(i, j, v); err != nil {
					return nil, err
				}
			}
			continue
		}
		for j := range honest.Row(i) {
			if err := out.Set(i, j, 0); err != nil {
				return nil, err
			}
		}
		for _, j := range a.Members[a.Group[i]] {
			if j == i {
				continue
			}
			if err := out.Set(i, j, 1); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ExpectedDeltaOld evaluates the paper's eq. (12): the expected gap between
// real and estimated reputation of subject j under plain (unweighted) gossip
// aggregation,
//
//	ΔR_old = −GC/N² + Σ_{i∈C} t_ij / N.
func ExpectedDeltaOld(honest *trust.Matrix, a *Assignment, j int) float64 {
	n := float64(honest.N())
	g := 0.0
	if len(a.Members) > 0 {
		g = float64(len(a.Members[0]))
	}
	c := float64(a.NumColluders())
	sum := 0.0
	for i, isC := range a.Colluder {
		if isC {
			sum += honest.Value(i, j)
		}
	}
	return -g*c/(n*n) + sum/n
}

// DampingFactor evaluates the paper's eq. (17) multiplier: with confidence
// weights w_oi >= 1 at observer o, the collusion error shrinks to
//
//	ΔR_new = N / (N + Σ_i (w_oi − 1)) · ΔR_old.
//
// nbrs is o's interaction set (trust.Matrix.InteractedWith) — nodes o never
// transacted with have weight exactly 1 and contribute nothing to the sum.
func DampingFactor(honest *trust.Matrix, o int, nbrs []int, p trust.WeightParams) float64 {
	n := float64(honest.N())
	sum := 0.0
	for _, i := range nbrs {
		if t, ok := honest.Get(o, i); ok {
			sum += p.Weight(t) - 1
		}
	}
	return n / (n + sum)
}

// ExpectedDeltaNew is eq. (17) in full: the damped expected gap at observer o.
func ExpectedDeltaNew(honest *trust.Matrix, a *Assignment, o, j int, nbrs []int, p trust.WeightParams) float64 {
	return DampingFactor(honest, o, nbrs, p) * ExpectedDeltaOld(honest, a, j)
}
