package baseline

import (
	"math"
	"testing"

	"diffgossip/internal/rng"
	"diffgossip/internal/trust"
)

func uniformTrust(t *testing.T, n int, seed uint64, density float64) *trust.Matrix {
	t.Helper()
	src := rng.New(seed)
	m := trust.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && src.Bool(density) {
				if err := m.Set(i, j, src.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return m
}

func TestEigenTrustValidation(t *testing.T) {
	m := trust.NewMatrix(5)
	if _, err := EigenTrust(trust.NewMatrix(0), EigenTrustConfig{}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := EigenTrust(m, EigenTrustConfig{Alpha: 2}); err == nil {
		t.Fatal("alpha 2 accepted")
	}
	if _, err := EigenTrust(m, EigenTrustConfig{PreTrusted: []int{9}}); err == nil {
		t.Fatal("out-of-range pre-trusted accepted")
	}
}

func TestEigenTrustSumsToOne(t *testing.T) {
	m := uniformTrust(t, 50, 1, 0.3)
	res, err := EigenTrust(m, EigenTrustConfig{Alpha: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("EigenTrust did not converge")
	}
	sum := 0.0
	for _, v := range res.Reputation {
		if v < 0 {
			t.Fatalf("negative reputation %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("reputation sums to %v", sum)
	}
}

func TestEigenTrustRanksGoodPeersHigher(t *testing.T) {
	// Node 0 is universally trusted at 0.95, node 1 universally distrusted
	// at 0.05; everyone else middling.
	n := 30
	src := rng.New(2)
	m := trust.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := 0.5
			switch j {
			case 0:
				v = 0.95
			case 1:
				v = 0.05
			}
			_ = m.Set(i, j, v+0.01*src.Float64())
		}
	}
	res, err := EigenTrust(m, EigenTrustConfig{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reputation[0] <= res.Reputation[1] {
		t.Fatalf("good peer %v <= bad peer %v", res.Reputation[0], res.Reputation[1])
	}
	if res.Reputation[0] <= res.Reputation[5] {
		t.Fatalf("good peer %v not above average peer %v", res.Reputation[0], res.Reputation[5])
	}
}

func TestEigenTrustPreTrustedBias(t *testing.T) {
	m := uniformTrust(t, 40, 3, 0.2)
	plain, err := EigenTrust(m, EigenTrustConfig{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	biased, err := EigenTrust(m, EigenTrustConfig{Alpha: 0.3, PreTrusted: []int{7}})
	if err != nil {
		t.Fatal(err)
	}
	if biased.Reputation[7] <= plain.Reputation[7] {
		t.Fatalf("pre-trust did not lift peer 7: %v vs %v", biased.Reputation[7], plain.Reputation[7])
	}
}

func TestEigenTrustEmptyMatrixUniform(t *testing.T) {
	// With no trust at all, every node's reputation equals the pre-trust
	// distribution.
	m := trust.NewMatrix(10)
	res, err := EigenTrust(m, EigenTrustConfig{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Reputation {
		if math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("uniform fixed point violated: %v", res.Reputation)
		}
	}
}

func TestPowerTrustBasics(t *testing.T) {
	if _, err := PowerTrust(trust.NewMatrix(0), 5); err == nil {
		t.Fatal("empty matrix accepted")
	}
	m := uniformTrust(t, 40, 4, 0.3)
	rep, err := PowerTrust(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range rep {
		if v < 0 || v > 1 {
			t.Fatalf("reputation[%d] = %v out of [0,1]", j, v)
		}
	}
}

func TestPowerTrustWeightsReputableOpinions(t *testing.T) {
	// Subject 2 is rated 0.9 by a reputable node (0, rated highly by all)
	// and 0.1 by a disreputable one (1, rated near zero by all).
	// PowerTrust must land closer to 0.9 than the plain mean 0.5.
	n := 20
	m := trust.NewMatrix(n)
	for i := 3; i < n; i++ {
		_ = m.Set(i, 0, 0.95)
		_ = m.Set(i, 1, 0.02)
	}
	_ = m.Set(0, 2, 0.9)
	_ = m.Set(1, 2, 0.1)
	rep, err := PowerTrust(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep[2] <= 0.55 {
		t.Fatalf("PowerTrust rep of subject 2 = %v, want > 0.55", rep[2])
	}
}

func TestGossipTrustFixedPoint(t *testing.T) {
	m := trust.NewMatrix(4)
	_ = m.Set(0, 3, 0.2)
	_ = m.Set(1, 3, 0.8)
	fp := GossipTrustFixedPoint(m)
	if math.Abs(fp[3]-0.5) > 1e-12 {
		t.Fatalf("fixed point = %v, want 0.5", fp[3])
	}
	if fp[0] != 0 {
		t.Fatalf("unrated subject fixed point = %v", fp[0])
	}
}

func TestGossipTrustMatchesDifferentialFixedPoint(t *testing.T) {
	// GossipTrust and Algorithm 1 share the same fixed point — the paper's
	// improvement is in convergence speed and the weighted (GCLR) layer,
	// not the global fixed point.
	m := uniformTrust(t, 30, 5, 0.4)
	fp := GossipTrustFixedPoint(m)
	for j := 0; j < 30; j++ {
		if math.Abs(fp[j]-m.ColumnRaterMean(j)) > 1e-12 {
			t.Fatal("fixed points diverge")
		}
	}
}
