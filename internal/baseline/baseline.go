// Package baseline implements the reputation-aggregation schemes the paper
// positions Differential Gossip Trust against in §2, so that the comparison
// experiments can run head-to-head on the same substrate:
//
//   - EigenTrust [13]: power iteration over the normalised trust matrix with
//     pre-trusted peers — a centralised-fixed-point scheme computing one
//     global reputation per node.
//   - PowerTrust [16]: reputation-weighted aggregation of local scores; the
//     weight of an opinion is the opining node's own (previous-round) global
//     reputation.
//   - GossipTrust [17]: plain push-sum gossip of weighted local scores — the
//     "normal push" aggregation whose step counts Figure 3 compares against
//     (the gossip mechanics themselves live in internal/gossip as
//     gossip.NormalPush; this package provides its fixed point).
//
// All three produce global reputation vectors (the paper's critique: a
// single value per node, identical at every observer), which is exactly what
// the GCLR variants generalise.
package baseline

import (
	"fmt"
	"math"

	"diffgossip/internal/trust"
)

// EigenTrustConfig parameterises EigenTrust power iteration.
type EigenTrustConfig struct {
	// PreTrusted is the set of a-priori trusted peers (EigenTrust's P).
	// When empty, the uniform distribution is used.
	PreTrusted []int
	// Alpha blends the pre-trust distribution into every iteration
	// (EigenTrust's a, typically 0.1–0.2). It also guarantees convergence
	// by making the chain irreducible.
	Alpha float64
	// MaxIter bounds the power iteration (default 200).
	MaxIter int
	// Tol is the L1 stopping tolerance (default 1e-9).
	Tol float64
}

// EigenTrustResult reports the fixed point and its cost.
type EigenTrustResult struct {
	// Reputation is the global trust vector (sums to 1).
	Reputation []float64
	// Iterations is the number of power-iteration steps used.
	Iterations int
	// Converged reports whether Tol was reached before MaxIter.
	Converged bool
}

// EigenTrust computes the EigenTrust global reputation vector for the local
// trust matrix m: the principal eigenvector of the column-normalised trust
// matrix, blended with the pre-trust distribution.
func EigenTrust(m *trust.Matrix, cfg EigenTrustConfig) (*EigenTrustResult, error) {
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty matrix")
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("baseline: alpha %v out of [0,1]", cfg.Alpha)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-9
	}

	// Pre-trust distribution p.
	p := make([]float64, n)
	if len(cfg.PreTrusted) == 0 {
		for i := range p {
			p[i] = 1 / float64(n)
		}
	} else {
		for _, i := range cfg.PreTrusted {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("baseline: pre-trusted peer %d out of range", i)
			}
			p[i] = 1 / float64(len(cfg.PreTrusted))
		}
	}

	// Row-normalised local trust: c_ij = t_ij / Σ_j t_ij. Rows with no
	// outgoing trust fall back to the pre-trust distribution, as the
	// EigenTrust paper prescribes.
	rows := make([]map[int]float64, n)
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = m.Row(i)
		for _, v := range rows[i] {
			rowSum[i] += v
		}
	}

	t := append([]float64(nil), p...)
	next := make([]float64, n)
	it := 0
	for ; it < cfg.MaxIter; it++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if rowSum[i] == 0 {
				// Undefined row: this peer trusts the pre-trusted set.
				for j, pj := range p {
					next[j] += t[i] * pj
				}
				continue
			}
			for j, v := range rows[i] {
				next[j] += t[i] * v / rowSum[i]
			}
		}
		delta := 0.0
		for j := range next {
			next[j] = (1-cfg.Alpha)*next[j] + cfg.Alpha*p[j]
			delta += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if delta <= cfg.Tol {
			it++
			break
		}
	}
	return &EigenTrustResult{
		Reputation: t,
		Iterations: it,
		Converged:  it < cfg.MaxIter || cfg.MaxIter == 0,
	}, nil
}

// PowerTrust computes the PowerTrust-style global reputation: iterate
//
//	R_j ← Σ_i R_i · t_ij / Σ_i R_i·[i rated j]
//
// starting from the uniform vector — each opinion weighted by the opining
// node's own reputation. rounds is the number of refinement rounds
// (PowerTrust converges in a handful; default 10).
func PowerTrust(m *trust.Matrix, rounds int) ([]float64, error) {
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty matrix")
	}
	if rounds <= 0 {
		rounds = 10
	}
	rep := make([]float64, n)
	for i := range rep {
		rep[i] = 0.5
	}
	num := make([]float64, n)
	den := make([]float64, n)
	for r := 0; r < rounds; r++ {
		for j := range num {
			num[j], den[j] = 0, 0
		}
		for i := 0; i < n; i++ {
			for j, v := range m.Row(i) {
				num[j] += rep[i] * v
				den[j] += rep[i]
			}
		}
		for j := range rep {
			if den[j] > 0 {
				rep[j] = num[j] / den[j]
			}
			// No weighted opinions about j: keep the previous value
			// (the 0.5 prior on the first round) — zeroing unrated
			// nodes would also zero the weight of their opinions and
			// collapse the iteration.
		}
	}
	return rep, nil
}

// GossipTrustFixedPoint returns the value plain push-sum gossip (GossipTrust)
// converges to for each subject: the unweighted mean of local scores over the
// subject's raters — identical at every observer, which is precisely the
// "global value" assumption the paper challenges.
func GossipTrustFixedPoint(m *trust.Matrix) []float64 {
	n := m.N()
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		out[j] = m.ColumnRaterMean(j)
	}
	return out
}
