package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func square(n int, fill float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = fill
		}
	}
	return m
}

func TestAvgRMSRelErrorZeroWhenEqual(t *testing.T) {
	r := square(4, 0.5)
	got, err := AvgRMSRelError(r, square(4, 0.5))
	if err != nil || got != 0 {
		t.Fatalf("AvgRMSRelError = %v, %v", got, err)
	}
}

func TestAvgRMSRelErrorKnownValue(t *testing.T) {
	// r all 0.5, rhat all 0.25: relative error 0.5 everywhere, so each row
	// contributes sqrt(N*0.25/N)=0.5 and the average is 0.5.
	got, err := AvgRMSRelError(square(3, 0.5), square(3, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AvgRMSRelError = %v, want 0.5", got)
	}
}

func TestAvgRMSRelErrorSkipsZeroReference(t *testing.T) {
	r := square(2, 0)
	rhat := square(2, 1)
	got, err := AvgRMSRelError(r, rhat)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("zero-reference entries should be skipped, got %v", got)
	}
}

func TestAvgRMSRelErrorShapeErrors(t *testing.T) {
	if _, err := AvgRMSRelError(square(2, 1), square(3, 1)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := AvgRMSRelError(ragged, ragged); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := AvgRMSRelError(nil, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("RMSE identical = %v, %v", got, err)
	}
	got, _ = RMSE([]float64{0, 0}, []float64{3, 4})
	if math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if got, _ := RMSE(nil, nil); got != 0 {
		t.Fatal("empty RMSE not 0")
	}
}

func TestMaxAbsError(t *testing.T) {
	got, err := MaxAbsError([]float64{1, 5, 2}, []float64{1.5, 4, 2})
	if err != nil || got != 1 {
		t.Fatalf("MaxAbsError = %v, %v", got, err)
	}
	if _, err := MaxAbsError([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestL1Diff(t *testing.T) {
	got, err := L1Diff([]float64{1, 2}, []float64{0, 4})
	if err != nil || got != 3 {
		t.Fatalf("L1Diff = %v, %v", got, err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 || math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if s.Std <= 0 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.P99 != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
	if s.Std != 0 {
		t.Fatalf("singleton std = %v", s.Std)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
			// Clamp magnitudes so intermediate sums cannot overflow.
			raw[i] = math.Mod(raw[i], 1e6)
		}
		s := Summarize(raw)
		return s.Min <= s.Median && s.Median <= s.P90+1e-9 &&
			s.P90 <= s.P99+1e-9 && s.P99 <= s.Max+1e-9 &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	if !math.IsNaN(tr.Last()) {
		t.Fatal("empty trace Last not NaN")
	}
	for _, v := range []float64{1, 0.5, 0.2, 0.05, 0.01} {
		tr.Append(v)
	}
	if got := tr.FirstBelow(0.1); got != 3 {
		t.Fatalf("FirstBelow(0.1) = %d, want 3", got)
	}
	if got := tr.FirstBelow(1e-9); got != -1 {
		t.Fatalf("FirstBelow tiny = %d, want -1", got)
	}
	if tr.Last() != 0.01 {
		t.Fatalf("Last = %v", tr.Last())
	}
}
