// Package metrics implements the error and summary statistics the paper's
// evaluation reports, most importantly the average RMS relative error of
// eq. (18) used in the collusion figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AvgRMSRelError implements the paper's eq. (18):
//
//	(1/N) Σ_i sqrt( Σ_j ((r_ij − r̂_ij)/r_ij)^2 / N )
//
// where r[i][j] is the reputation of node j computed at node i in the
// presence of colluders and rhat[i][j] the value without them. Columns where
// the reference r_ij is zero are skipped (relative error is undefined there);
// the divisor stays N as in the paper, so skipped terms count as zero error.
func AvgRMSRelError(r, rhat [][]float64) (float64, error) {
	n := len(r)
	if n == 0 || len(rhat) != n {
		return 0, fmt.Errorf("metrics: shape mismatch %dx? vs %dx?", len(r), len(rhat))
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if len(r[i]) != n || len(rhat[i]) != n {
			return 0, fmt.Errorf("metrics: row %d not square", i)
		}
		sum := 0.0
		for j := 0; j < n; j++ {
			if r[i][j] == 0 {
				continue
			}
			d := (r[i][j] - rhat[i][j]) / r[i][j]
			sum += d * d
		}
		total += math.Sqrt(sum / float64(n))
	}
	return total / float64(n), nil
}

// RMSE returns the plain root-mean-square error between two vectors.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// MaxAbsError returns max_i |a_i − b_i|.
func MaxAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(a), len(b))
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// L1Diff returns Σ_i |a_i − b_i|, the quantity in the paper's vector
// convergence rule (7).
func L1Diff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(a), len(b))
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum, nil
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes a Summary of xs. It copies the input.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum, sumsq := 0.0, 0.0
	for _, x := range sorted {
		sum += x
		sumsq += x * x
	}
	n := float64(len(sorted))
	s.Mean = sum / n
	variance := sumsq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile interpolates the q-quantile of an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Trace accumulates a per-step scalar series (e.g. the network-wide
// convergence error per gossip step) and reports when it first crossed a
// threshold.
type Trace struct {
	Values []float64
}

// Append records the next step's value.
func (t *Trace) Append(v float64) { t.Values = append(t.Values, v) }

// FirstBelow returns the first step index at which the series dropped to or
// below eps, or -1 if it never did.
func (t *Trace) FirstBelow(eps float64) int {
	for i, v := range t.Values {
		if v <= eps {
			return i
		}
	}
	return -1
}

// Last returns the final value, or NaN for an empty trace.
func (t *Trace) Last() float64 {
	if len(t.Values) == 0 {
		return math.NaN()
	}
	return t.Values[len(t.Values)-1]
}
