package agent

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"diffgossip/internal/graph"
	"diffgossip/internal/transport"
)

func TestConfigValidation(t *testing.T) {
	h := transport.NewHub()
	ep, _ := h.Endpoint("a")
	bad := []Config{
		{Transport: nil, Neighbors: []string{"b"}, Epsilon: 0.01},
		{Transport: ep, Neighbors: nil, Epsilon: 0.01},
		{Transport: ep, Neighbors: []string{"b"}, Epsilon: 0},
		{Transport: ep, Neighbors: []string{"b"}, Epsilon: 0.1, G0: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// runCluster spins one agent per node of g over the hub, with value xs[i] and
// weight 1 everywhere (average mode), and returns the per-node results.
func runCluster(t *testing.T, g *graph.Graph, xs []float64, eps float64, timeout time.Duration) []Result {
	t.Helper()
	h := transport.NewHub()
	n := g.N()
	eps0 := eps
	names := make([]string, n)
	eps_ := make([]*transport.ChannelTransport, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("peer%d", i)
	}
	for i := 0; i < n; i++ {
		ep, err := h.Endpoint(names[i])
		if err != nil {
			t.Fatal(err)
		}
		eps_[i] = ep
	}
	results := make([]Result, n)
	errs := make([]error, n)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nbrs := make([]string, 0, g.Degree(i))
		for _, v := range g.Neighbors(i) {
			nbrs = append(nbrs, names[v])
		}
		a, err := New(Config{
			Transport:    eps_[i],
			Neighbors:    nbrs,
			Y0:           xs[i],
			G0:           1,
			Epsilon:      eps0,
			TickInterval: 2 * time.Millisecond,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			results[i], errs[i] = a.Run(ctx)
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v (estimate %v)", i, err, results[i].Estimate)
		}
	}
	return results
}

func TestClusterConvergesToAverageOnRing(t *testing.T) {
	g := graph.Ring(8)
	xs := []float64{0.1, 0.9, 0.3, 0.7, 0.5, 0.2, 0.8, 0.4}
	want := 0.0
	for _, x := range xs {
		want += x
	}
	want /= float64(len(xs))
	results := runCluster(t, g, xs, 1e-4, 30*time.Second)
	for i, r := range results {
		if math.Abs(r.Estimate-want) > 0.02 {
			t.Fatalf("agent %d estimate %v, want %v", i, r.Estimate, want)
		}
		if r.Ticks == 0 || r.SharesSent == 0 {
			t.Fatalf("agent %d did not gossip: %+v", i, r)
		}
	}
}

func TestClusterConvergesOnPAGraph(t *testing.T) {
	g := graph.MustPA(16, 2, 7)
	xs := make([]float64, 16)
	want := 0.0
	for i := range xs {
		xs[i] = float64(i) / 16
		want += xs[i]
	}
	want /= 16
	results := runCluster(t, g, xs, 1e-4, 30*time.Second)
	for i, r := range results {
		if math.Abs(r.Estimate-want) > 0.02 {
			t.Fatalf("agent %d estimate %v, want %v", i, r.Estimate, want)
		}
	}
}

func TestAgentOverTCP(t *testing.T) {
	// 6 agents on a ring over real TCP sockets on localhost.
	n := 6
	g := graph.Ring(n)
	trs := make([]*transport.TCPTransport, n)
	for i := 0; i < n; i++ {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
	}
	xs := []float64{0, 1, 0.5, 0.25, 0.75, 0.5}
	want := 0.0
	for _, x := range xs {
		want += x
	}
	want /= float64(n)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nbrs := make([]string, 0, 2)
		for _, v := range g.Neighbors(i) {
			nbrs = append(nbrs, trs[v].Addr())
		}
		a, err := New(Config{
			Transport:    trs[i],
			Neighbors:    nbrs,
			Y0:           xs[i],
			G0:           1,
			Epsilon:      1e-4,
			TickInterval: 5 * time.Millisecond,
			Seed:         uint64(i + 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			results[i], errs[i] = a.Run(ctx)
		}(i, a)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("agent %d: %v", i, errs[i])
		}
		if math.Abs(results[i].Estimate-want) > 0.05 {
			t.Fatalf("agent %d estimate %v, want %v", i, results[i].Estimate, want)
		}
	}
}

func TestAgentCancellation(t *testing.T) {
	h := transport.NewHub()
	a1, _ := h.Endpoint("a")
	b1, _ := h.Endpoint("b")
	_ = b1 // b never runs: a can never finish
	ag, err := New(Config{
		Transport:    a1,
		Neighbors:    []string{"b"},
		Y0:           0.5,
		G0:           1,
		Epsilon:      1e-3,
		TickInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := ag.Run(ctx)
	if err == nil {
		t.Fatal("run finished without a live neighbour")
	}
	if res.Ticks == 0 {
		t.Fatal("agent never ticked before cancellation")
	}
}

func TestEstimateBeforeRun(t *testing.T) {
	h := transport.NewHub()
	ep, _ := h.Endpoint("solo")
	a, err := New(Config{
		Transport: ep, Neighbors: []string{"x"}, Y0: 0.7, G0: 1, Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(); got != 0.7 {
		t.Fatalf("initial estimate = %v, want 0.7", got)
	}
	b, err := New(Config{
		Transport: ep, Neighbors: []string{"x"}, Y0: 0.7, G0: 0, Epsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Estimate(); got != 0 {
		t.Fatalf("zero-weight estimate = %v, want 0", got)
	}
}

func TestLostSharesReabsorbed(t *testing.T) {
	// Neighbour address does not exist on the hub: every push fails and is
	// re-absorbed, so the local estimate must never drift from Y0.
	h := transport.NewHub()
	ep, _ := h.Endpoint("lonely")
	a, err := New(Config{
		Transport:    ep,
		Neighbors:    []string{"missing"},
		Y0:           0.42,
		G0:           1,
		Epsilon:      1e-6,
		TickInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, _ := a.Run(ctx)
	if res.SharesLost == 0 {
		t.Fatal("no shares lost despite dead neighbour")
	}
	if math.Abs(res.Estimate-0.42) > 1e-12 {
		t.Fatalf("estimate drifted to %v with no live peers", res.Estimate)
	}
}
