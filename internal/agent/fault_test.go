package agent

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"diffgossip/internal/graph"
	"diffgossip/internal/transport"
)

// runFaultyCluster spins one agent per node over a hub whose send sides are
// wrapped in transport.Fault, configured by the caller before the agents
// start. It exercises the fault injector under the real asynchronous
// protocol stack rather than in isolation.
func runFaultyCluster(t *testing.T, g *graph.Graph, xs []float64, configure func(i int, f *transport.Fault), timeout time.Duration) []Result {
	t.Helper()
	h := transport.NewHub()
	n := g.N()
	faults := make([]*transport.Fault, n)
	for i := 0; i < n; i++ {
		ep, err := h.Endpoint(fmt.Sprintf("peer%d", i))
		if err != nil {
			t.Fatal(err)
		}
		faults[i] = transport.NewFault(ep, uint64(100+i))
		configure(i, faults[i])
	}
	// A background ticker flushes delayed messages, standing in for the
	// round boundaries of the synchronous simulator.
	flushCtx, stopFlush := context.WithCancel(context.Background())
	defer stopFlush()
	go func() {
		tk := time.NewTicker(3 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-flushCtx.Done():
				return
			case <-tk.C:
				for _, f := range faults {
					_ = f.Tick()
				}
			}
		}
	}()

	results := make([]Result, n)
	errs := make([]error, n)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nbrs := make([]string, 0, g.Degree(i))
		for _, v := range g.Neighbors(i) {
			nbrs = append(nbrs, fmt.Sprintf("peer%d", v))
		}
		a, err := New(Config{
			Transport:    faults[i],
			Neighbors:    nbrs,
			Y0:           xs[i],
			G0:           1,
			Epsilon:      1e-4,
			TickInterval: 2 * time.Millisecond,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			results[i], errs[i] = a.Run(ctx)
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v (estimate %v)", i, err, results[i].Estimate)
		}
	}
	return results
}

// TestClusterConvergesOverLossyFaultTransport: with drops reported
// (ErrDropped stands in for a missing ack), every agent re-absorbs its lost
// shares, so mass is conserved and the cluster still converges to the exact
// average through a 25%-loss link layer — the agent-level analogue of the
// paper's Fig. 4 robustness claim.
func TestClusterConvergesOverLossyFaultTransport(t *testing.T) {
	g := graph.MustPA(12, 2, 5)
	xs := make([]float64, 12)
	want := 0.0
	for i := range xs {
		xs[i] = float64(i) / 12
		want += xs[i]
	}
	want /= 12
	var faults []*transport.Fault
	results := runFaultyCluster(t, g, xs, func(i int, f *transport.Fault) {
		f.SetDropProb(0.25)
		f.ReportDrops(true)
		// Only gossip pushes are lossy; the paper's model (and the
		// synchronous engines) treat the degree/announcement control plane
		// as reliable, and the agents' termination protocol depends on
		// announcements arriving eventually.
		f.SetFilter(func(m transport.Message) bool { return m.Kind == transport.KindPair })
		faults = append(faults, f)
	}, 60*time.Second)
	for i, r := range results {
		if math.Abs(r.Estimate-want) > 0.02 {
			t.Fatalf("agent %d estimate %v, want %v", i, r.Estimate, want)
		}
		if r.SharesLost == 0 {
			t.Fatalf("agent %d saw no dropped shares at 25%% loss: %+v", i, r)
		}
	}
	dropped := 0
	for _, f := range faults {
		d, _, _ := f.Stats()
		dropped += d
	}
	if dropped == 0 {
		t.Fatal("fault layer recorded no drops")
	}
}

// TestClusterConvergesOverDelayingFaultTransport: delayed messages are
// released at flush boundaries, so no mass is ever lost and convergence
// survives heavy reordering.
func TestClusterConvergesOverDelayingFaultTransport(t *testing.T) {
	g := graph.Ring(8)
	xs := []float64{0.1, 0.9, 0.3, 0.7, 0.5, 0.2, 0.8, 0.4}
	want := 0.0
	for _, x := range xs {
		want += x
	}
	want /= float64(len(xs))
	results := runFaultyCluster(t, g, xs, func(i int, f *transport.Fault) {
		f.SetDelayProb(0.4)
		f.SetFilter(func(m transport.Message) bool { return m.Kind == transport.KindPair })
	}, 60*time.Second)
	for i, r := range results {
		if math.Abs(r.Estimate-want) > 0.02 {
			t.Fatalf("agent %d estimate %v, want %v", i, r.Estimate, want)
		}
	}
}
