// Package agent runs the differential gossip protocol as a real distributed
// process: each Agent owns one transport endpoint, exchanges degree
// announcements, gossip shares and convergence flags with its overlay
// neighbours, and converges to the network-wide aggregate exactly like the
// synchronous simulator — demonstrating that the algorithm in internal/core
// deploys unchanged over TCP.
//
// The agent gossips one subject's (Y, G) pair (Algorithm 1 for a single
// node). Ticks replace the paper's synchronous steps; mass conservation holds
// because every share sent is subtracted from the local state, and shares
// that fail to send are re-absorbed (the paper's churn recovery).
package agent

import (
	"context"
	"fmt"
	"sync"
	"time"

	"diffgossip/internal/rng"
	"diffgossip/internal/transport"
)

// Config parameterises an Agent.
type Config struct {
	// Transport is the agent's endpoint (channel hub or TCP).
	Transport transport.Transport
	// Neighbors are the overlay neighbours' addresses.
	Neighbors []string
	// Subject tags the gossip pairs (useful when several aggregations
	// share a transport; this agent processes only matching pairs).
	Subject int
	// Y0 is the agent's direct-trust feedback about the subject; G0 is its
	// initial gossip weight (1 for raters under Algorithm 1).
	Y0, G0 float64
	// Epsilon is the convergence tolerance ξ.
	Epsilon float64
	// StableTicks is how many consecutive in-tolerance ticks are required
	// before the agent announces convergence (asynchronous networks need
	// more than the simulator's single step; default 5).
	StableTicks int
	// TickInterval is the gossip cadence (default 20ms).
	TickInterval time.Duration
	// Seed drives neighbour selection.
	Seed uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.StableTicks == 0 {
		out.StableTicks = 5
	}
	if out.TickInterval == 0 {
		out.TickInterval = 20 * time.Millisecond
	}
	return out
}

func (c *Config) validate() error {
	if c.Transport == nil {
		return fmt.Errorf("agent: nil transport")
	}
	if len(c.Neighbors) == 0 {
		return fmt.Errorf("agent: no neighbours")
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("agent: epsilon %v must be > 0", c.Epsilon)
	}
	if c.G0 < 0 {
		return fmt.Errorf("agent: negative initial weight")
	}
	return nil
}

// Result reports a finished run.
type Result struct {
	// Estimate is the final Y/G ratio.
	Estimate float64
	// Ticks is the number of gossip ticks executed.
	Ticks int
	// SharesSent and SharesLost count outbound gossip pairs.
	SharesSent, SharesLost int
}

// Agent is one distributed gossip participant.
type Agent struct {
	cfg Config
	src *rng.Source

	mu        sync.Mutex
	y, g      float64
	prevRatio float64
	stable    int
	selfConv  bool
	nbrConv   map[string]bool
	nbrDeg    map[string]int
	degAcked  map[string]bool // degree announcement accepted by a live connection
	convAcked map[string]bool // last convergence flag a neighbour's connection accepted
	convEver  map[string]bool // whether any convergence flag ever got through
	extRecv   bool
	ticks     int
	sent      int
	lost      int
}

// New validates cfg and builds an Agent. Call Run to participate.
func New(cfg Config) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	a := &Agent{
		cfg:       cfg,
		src:       rng.New(cfg.Seed),
		y:         cfg.Y0,
		g:         cfg.G0,
		nbrConv:   make(map[string]bool, len(cfg.Neighbors)),
		nbrDeg:    make(map[string]int, len(cfg.Neighbors)),
		degAcked:  make(map[string]bool, len(cfg.Neighbors)),
		convAcked: make(map[string]bool, len(cfg.Neighbors)),
		convEver:  make(map[string]bool, len(cfg.Neighbors)),
	}
	a.prevRatio = a.ratioLocked()
	return a, nil
}

// ratioLocked returns Y/G or the sentinel; callers hold mu (or own the agent
// exclusively during construction).
func (a *Agent) ratioLocked() float64 {
	if a.g == 0 {
		return 10 // same sentinel as the simulator
	}
	return a.y / a.g
}

// Estimate returns the current ratio (0 until any weight mass arrives).
func (a *Agent) Estimate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.g == 0 {
		return 0
	}
	return a.y / a.g
}

// fanout computes k = max(1, round(degree / avgNeighbourDegree)) from the
// degree announcements received so far; 1 until announcements arrive.
func (a *Agent) fanout() int {
	if len(a.nbrDeg) == 0 {
		return 1
	}
	sum := 0
	for _, d := range a.nbrDeg {
		sum += d
	}
	avg := float64(sum) / float64(len(a.nbrDeg))
	if avg == 0 {
		return 1
	}
	k := float64(len(a.cfg.Neighbors)) / avg
	if k < 1 {
		return 1
	}
	if int(k+0.5) > len(a.cfg.Neighbors) {
		return len(a.cfg.Neighbors)
	}
	return int(k + 0.5)
}

// Run participates in the gossip until this agent and all its neighbours have
// announced convergence, or ctx is cancelled (the current estimate is still
// returned with ctx.Err()).
func (a *Agent) Run(ctx context.Context) (Result, error) {
	tr := a.cfg.Transport
	// Setup: announce degree to all neighbours. Failed announcements (a
	// neighbour not listening yet, or its transport in dial backoff) are
	// retried from tick() until a connection accepts them.
	for _, n := range a.cfg.Neighbors {
		if tr.Send(n, transport.Message{
			Kind:   transport.KindDegree,
			Degree: len(a.cfg.Neighbors),
		}) == nil {
			a.mu.Lock()
			a.degAcked[n] = true
			a.mu.Unlock()
		}
	}

	ticker := time.NewTicker(a.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return a.result(), ctx.Err()
		case msg, ok := <-tr.Inbox():
			if !ok {
				return a.result(), transport.ErrClosed
			}
			a.handle(msg)
			if a.finished() {
				return a.result(), nil
			}
		case <-ticker.C:
			a.tick()
			if a.finished() {
				return a.result(), nil
			}
		}
	}
}

// handle processes one inbound protocol message.
func (a *Agent) handle(msg transport.Message) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch msg.Kind {
	case transport.KindDegree:
		a.nbrDeg[msg.From] = msg.Degree
	case transport.KindPair:
		if msg.Subject != a.cfg.Subject {
			return
		}
		a.y += msg.Y
		a.g += msg.G
		a.extRecv = true
	case transport.KindConverged:
		a.nbrConv[msg.From] = msg.Converged
	}
}

// tick performs one gossip step: split, keep one share, push k shares.
func (a *Agent) tick() {
	a.mu.Lock()
	k := a.fanout()
	f := 1 / float64(k+1)
	shareY, shareG := a.y*f, a.g*f
	// Keep one share; the k outbound shares leave the local state now and
	// are re-absorbed individually if a send fails.
	a.y, a.g = shareY, shareG
	a.ticks++
	targets := a.pickNeighbors(k)
	subject := a.cfg.Subject
	a.mu.Unlock()

	for _, n := range targets {
		err := a.cfg.Transport.Send(n, transport.Message{
			Kind:    transport.KindPair,
			Subject: subject,
			Y:       shareY,
			G:       shareG,
		})
		a.mu.Lock()
		a.sent++
		if err != nil {
			a.lost++
			a.y += shareY
			a.g += shareG
		}
		a.mu.Unlock()
	}

	// Convergence bookkeeping.
	a.mu.Lock()
	r := a.ratioLocked()
	inTol := a.g > 0 && a.extRecv && abs(r-a.prevRatio) <= a.cfg.Epsilon
	a.prevRatio = r
	if inTol {
		a.stable++
	} else {
		a.stable = 0
	}
	conv := a.stable >= a.cfg.StableTicks
	a.selfConv = conv
	// Control-plane retry: unlike gossip shares (whose loss the protocol
	// absorbs by re-absorbing mass), the degree and convergence
	// announcements must eventually get through — a convergence flip that
	// dies against a peer's dial-backoff window would otherwise be lost
	// forever and deadlock finished(). Retry every tick until a live
	// connection accepts the current value.
	var degPending, convPending []string
	for _, n := range a.cfg.Neighbors {
		if !a.degAcked[n] {
			degPending = append(degPending, n)
		}
		if !a.convEver[n] || a.convAcked[n] != conv {
			convPending = append(convPending, n)
		}
	}
	a.mu.Unlock()

	for _, n := range degPending {
		if a.cfg.Transport.Send(n, transport.Message{
			Kind:   transport.KindDegree,
			Degree: len(a.cfg.Neighbors),
		}) == nil {
			a.mu.Lock()
			a.degAcked[n] = true
			a.mu.Unlock()
		}
	}
	for _, n := range convPending {
		if a.cfg.Transport.Send(n, transport.Message{
			Kind:      transport.KindConverged,
			Converged: conv,
		}) == nil {
			a.mu.Lock()
			a.convEver[n] = true
			a.convAcked[n] = conv
			a.mu.Unlock()
		}
	}
}

// pickNeighbors selects k distinct neighbours; callers hold mu.
func (a *Agent) pickNeighbors(k int) []string {
	idx := a.src.Sample(len(a.cfg.Neighbors), k)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = a.cfg.Neighbors[j]
	}
	return out
}

// finished reports whether this agent and every neighbour have announced
// convergence — AND this agent's own announcement has been delivered to
// every neighbour. The delivery half matters: an agent that exits (and
// closes its transport) while its flag is still stuck behind a neighbour's
// dial-backoff window would strand that neighbour forever. Requiring
// delivery cannot deadlock: a neighbour only exits after its own flag got
// through to us, at which point nothing it still owes us is pending.
func (a *Agent) finished() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.selfConv {
		return false
	}
	for _, n := range a.cfg.Neighbors {
		if !a.nbrConv[n] {
			return false
		}
		if !a.convEver[n] || !a.convAcked[n] {
			return false
		}
	}
	return true
}

func (a *Agent) result() Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	est := 0.0
	if a.g > 0 {
		est = a.y / a.g
	}
	return Result{Estimate: est, Ticks: a.ticks, SharesSent: a.sent, SharesLost: a.lost}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
