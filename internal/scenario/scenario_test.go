package scenario

import (
	"math"
	"strings"
	"testing"
)

// mustRun executes a scenario and fails the test on error.
func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	return res
}

// requireIdentical asserts two runs are bit-identical in log and outcome.
func requireIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Log) != len(b.Log) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.Log), len(b.Log))
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("event log line %d differs:\n  %s\n  %s", i, a.Log[i], b.Log[i])
		}
	}
	if len(a.Reputations) != len(b.Reputations) {
		t.Fatalf("reputation vectors differ in length: %d vs %d", len(a.Reputations), len(b.Reputations))
	}
	for i := range a.Reputations {
		if math.Float64bits(a.Reputations[i]) != math.Float64bits(b.Reputations[i]) {
			t.Fatalf("reputation %d differs at the bit level: %v vs %v", i, a.Reputations[i], b.Reputations[i])
		}
	}
	if a.Rounds != b.Rounds || a.Alive != b.Alive || a.N != b.N ||
		math.Float64bits(a.MaxMassErr) != math.Float64bits(b.MaxMassErr) ||
		math.Float64bits(a.FinalErr) != math.Float64bits(b.FinalErr) ||
		a.Messages != b.Messages {
		t.Fatalf("run summaries differ: %+v vs %+v", a, b)
	}
}

// TestScalarChurnReplay is the acceptance scenario: N=1000 with 10% crash +
// 10% join over the run under 20% packet loss, replayed twice from the same
// seed, must produce bit-identical event logs and final reputations, and
// mass conservation must hold in every round.
func TestScalarChurnReplay(t *testing.T) {
	cfg := Config{
		Target:   TargetScalar,
		N:        1000,
		Rounds:   250,
		LossProb: 0.2,
		Seed:     42,
		Plan:     Plan{CrashFrac: 0.1, JoinFrac: 0.1},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	requireIdentical(t, a, b)

	if a.Crashes != 100 || a.Joins != 100 {
		t.Fatalf("plan executed %d crashes and %d joins, want 100 each", a.Crashes, a.Joins)
	}
	if len(a.Violations) > 0 {
		t.Fatalf("mass-conservation violations:\n%s", strings.Join(a.Violations, "\n"))
	}
	if a.MaxMassErr > cfg.MassTol && a.MaxMassErr > 1e-8 {
		t.Fatalf("worst mass drift %v exceeds tolerance", a.MaxMassErr)
	}
	if a.N != 1100 || a.Alive != 1000 {
		t.Fatalf("final membership N=%d alive=%d, want 1100/1000", a.N, a.Alive)
	}
	if len(a.Log) < 200 {
		t.Fatalf("event log has only %d lines for 200 events", len(a.Log))
	}
}

func TestScalarSeedSensitivity(t *testing.T) {
	cfg := Config{
		Target: TargetScalar, N: 200, Rounds: 120, LossProb: 0.1, Seed: 1,
		Plan: Plan{CrashFrac: 0.1, JoinFrac: 0.1},
	}
	a := mustRun(t, cfg)
	cfg.Seed = 2
	c := mustRun(t, cfg)
	same := len(a.Log) == len(c.Log)
	if same {
		for i := range a.Log {
			if a.Log[i] != c.Log[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical event logs")
	}
}

// TestScalarLeaveConservesAndConverges: graceful leaves hand mass off, so
// the surviving network still converges to the exact mass-implied average.
func TestScalarLeaveConserves(t *testing.T) {
	cfg := Config{
		Target: TargetScalar, N: 300, Rounds: 400, Seed: 7,
		Plan: Plan{LeaveFrac: 0.2},
	}
	res := mustRun(t, cfg)
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Leaves != 60 {
		t.Fatalf("executed %d leaves, want 60", res.Leaves)
	}
	if !res.Converged {
		t.Fatal("run did not converge after churn settled")
	}
	if res.FinalErr > 0.05 {
		t.Fatalf("final estimate deviates %v from the mass reference", res.FinalErr)
	}
}

// TestScalarPartitionHeals: a partition stalls cross-cell flow; after it
// heals the protocol still satisfies mass conservation and finishes.
func TestScalarPartitionAndCollusion(t *testing.T) {
	cfg := Config{
		Target: TargetScalar, N: 200, Rounds: 300, Seed: 9,
		Plan: Plan{
			CrashFrac:      0.05,
			PartitionSpan:  30,
			PartitionRound: 40,
			PartitionFrac:  0.4,
			ColludeFrac:    0.1,
			ColludeRound:   120,
			ColludeLie:     1,
		},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	requireIdentical(t, a, b)
	if len(a.Violations) > 0 {
		t.Fatalf("violations: %v", a.Violations)
	}
	var sawPartition, sawHeal, sawCollude bool
	for _, line := range a.Log {
		sawPartition = sawPartition || strings.Contains(line, "partition")
		sawHeal = sawHeal || strings.Contains(line, "heal")
		sawCollude = sawCollude || strings.Contains(line, "collude")
	}
	if !sawPartition || !sawHeal || !sawCollude {
		t.Fatalf("log missing partition/heal/collude entries:\n%s", strings.Join(a.Log, "\n"))
	}
	if a.Colluders == 0 {
		t.Fatal("no colluders formed")
	}
}

func TestVectorChurnReplay(t *testing.T) {
	cfg := Config{
		Target:   TargetVector,
		N:        60,
		Rounds:   100,
		LossProb: 0.1,
		Seed:     11,
		Plan: Plan{
			CrashFrac:    0.1,
			LeaveFrac:    0.05,
			JoinFrac:     0.1,
			RejoinFrac:   0.05,
			ColludeFrac:  0.15,
			ColludeRound: 50,
			ColludeLie:   1,
		},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	requireIdentical(t, a, b)
	if len(a.Violations) > 0 {
		t.Fatalf("violations:\n%s", strings.Join(a.Violations, "\n"))
	}
	if a.Joins == 0 || a.Crashes == 0 {
		t.Fatalf("plan under-executed: %+v", a)
	}
	if a.N != 66 {
		t.Fatalf("final overlay size %d, want 66", a.N)
	}
}

func TestServiceChurnReplay(t *testing.T) {
	cfg := Config{
		Target:     TargetService,
		N:          60,
		Rounds:     40,
		Seed:       13,
		EpochEvery: 5,
		Plan: Plan{
			CrashFrac:    0.15,
			RejoinFrac:   0.1,
			ColludeFrac:  0.1,
			ColludeRound: 20,
			ColludeLie:   1,
		},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	requireIdentical(t, a, b)
	if len(a.Violations) > 0 {
		t.Fatalf("violations:\n%s", strings.Join(a.Violations, "\n"))
	}
	nonZero := 0
	for _, v := range a.Reputations {
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < 10 {
		t.Fatalf("only %d subjects earned a reputation through the epoch loop", nonZero)
	}
}

func TestServiceRejectsOverlayEvents(t *testing.T) {
	cfg := Config{
		Target: TargetService, N: 20, Rounds: 10, Seed: 3,
		Script: []Event{{Round: 2, Kind: KindJoin}},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("service target accepted a join event")
	}
	cfg.Script = []Event{{Round: 2, Kind: KindLoss, Value: 0.5}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("service target accepted a loss event")
	}
	cfg.Script = []Event{{Round: 2, Kind: KindPartition, Span: 3}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("service target accepted a partition event")
	}
}

func TestScriptedPinnedEvents(t *testing.T) {
	cfg := Config{
		Target: TargetScalar, N: 50, Rounds: 60, Seed: 5,
		Script: []Event{
			{Round: 3, Kind: KindCrash, Node: 7},
			{Round: 10, Kind: KindRejoin, Node: 7},
			{Round: 15, Kind: KindLoss, Value: 0.3},
			{Round: 20, Kind: KindRejoin, Node: PickNode}, // nobody down: skipped
		},
	}
	res := mustRun(t, cfg)
	var sawCrash7, sawRejoin7, sawLoss, sawSkip bool
	for _, line := range res.Log {
		sawCrash7 = sawCrash7 || strings.Contains(line, "crash node=7")
		sawRejoin7 = sawRejoin7 || strings.Contains(line, "rejoin node=7")
		sawLoss = sawLoss || strings.Contains(line, "loss p=0.3")
		sawSkip = sawSkip || strings.Contains(line, "rejoin skipped")
	}
	if !sawCrash7 || !sawRejoin7 || !sawLoss || !sawSkip {
		t.Fatalf("scripted events missing from log:\n%s", strings.Join(res.Log, "\n"))
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Target: TargetScalar, N: 2},                                    // too small
		{Target: TargetScalar, N: 100, LossProb: 1},                     // loss out of range
		{Target: TargetScalar, N: 100, M: 200},                          // M >= N
		{Target: TargetScalar, N: 100, Script: []Event{{Round: 99999}}}, // event out of range
		{Target: TargetScalar, N: 100, Script: []Event{{Round: -1}}},    // negative round
		{Target: TargetKind(99), N: 100},                                // unknown target
		{Target: TargetScalar, N: 100, Epsilon: -1},                     // bad epsilon
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestParseTargetKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TargetKind
	}{{"", TargetScalar}, {"scalar", TargetScalar}, {"vector", TargetVector}, {"service", TargetService}} {
		got, err := ParseTargetKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseTargetKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseTargetKind("bogus"); err == nil {
		t.Fatal("bogus target accepted")
	}
}
