package scenario

import (
	"diffgossip/internal/rng"
)

// Plan generates a randomized timeline: event counts are fractions of the
// initial network size, placed uniformly over the run's rounds by a
// dedicated split of the scenario seed. The expansion is a pure function of
// (plan, n, rounds, stream), so a plan replays exactly.
//
// Rejoin events whose turn comes up before anything has departed are
// skipped at execution time (and logged), so any combination of rates is a
// valid plan.
type Plan struct {
	// JoinFrac admits round(JoinFrac·N) new nodes over the run.
	JoinFrac float64
	// CrashFrac crashes round(CrashFrac·N) alive nodes over the run.
	CrashFrac float64
	// LeaveFrac removes round(LeaveFrac·N) alive nodes gracefully.
	LeaveFrac float64
	// RejoinFrac whitewashes round(RejoinFrac·N) departed nodes back in.
	RejoinFrac float64

	// PartitionSpan > 0 schedules one partition of PartitionSpan rounds
	// starting at PartitionRound, with PartitionFrac of the alive nodes in
	// the minority cell (default 0.5).
	PartitionSpan  int
	PartitionRound int
	PartitionFrac  float64

	// ColludeFrac > 0 schedules one collusion-group formation at
	// ColludeRound: the group is ColludeFrac of the alive nodes, lying with
	// value ColludeLie. Set it explicitly — 1 is the paper's inflation
	// attack, 0 a deflation attack; the zero value really means lie = 0.
	ColludeFrac  float64
	ColludeRound int
	ColludeLie   float64
}

// zero reports whether the plan generates no events.
func (p Plan) zero() bool {
	return p.JoinFrac <= 0 && p.CrashFrac <= 0 && p.LeaveFrac <= 0 && p.RejoinFrac <= 0 &&
		p.PartitionSpan <= 0 && p.ColludeFrac <= 0
}

func planCount(frac float64, n int) int {
	if frac <= 0 {
		return 0
	}
	c := int(frac*float64(n) + 0.5)
	if c < 1 {
		c = 1
	}
	return c
}

// expand materialises the plan into events. Node churn events use PickNode
// so execution-time selection tracks the evolving membership.
func (p Plan) expand(n, rounds int, src *rng.Source) []Event {
	if p.zero() {
		return nil
	}
	var out []Event
	emit := func(kind Kind, count int) {
		for i := 0; i < count; i++ {
			out = append(out, Event{Round: src.Intn(rounds), Kind: kind, Node: PickNode})
		}
	}
	emit(KindCrash, planCount(p.CrashFrac, n))
	emit(KindLeave, planCount(p.LeaveFrac, n))
	emit(KindJoin, planCount(p.JoinFrac, n))
	emit(KindRejoin, planCount(p.RejoinFrac, n))
	if p.PartitionSpan > 0 {
		out = append(out, Event{
			Round: clampRound(p.PartitionRound, rounds),
			Kind:  KindPartition,
			Span:  p.PartitionSpan,
			Frac:  p.PartitionFrac,
		})
	}
	if p.ColludeFrac > 0 {
		out = append(out, Event{
			Round: clampRound(p.ColludeRound, rounds),
			Kind:  KindCollude,
			Frac:  p.ColludeFrac,
			Value: p.ColludeLie,
		})
	}
	return out
}

func clampRound(r, rounds int) int {
	if r < 0 {
		return 0
	}
	if r >= rounds {
		return rounds - 1
	}
	return r
}
