package scenario

import (
	"fmt"
	"math"
	"reflect"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// clusterTarget drives a federated dgserve cluster through churn: R replicas
// (timeline nodes 0..R-1), each a full reputation service with its own
// ledger and epoch pipeline, replicate by anti-entropy over the in-memory
// hub; the remaining timeline nodes are clients that submit feedback through
// whichever replica a round-robin cursor lands on next — any client may hit
// any replica, and per-cell last-writer-wins tags (see internal/cluster)
// keep the replicas convergent anyway. Each replica's endpoint is wrapped in
// a seeded transport.Fault, so the timeline's loss and partition events
// apply to the replication path.
//
// Membership is the real thing, not a static list: replica 0 bootstraps with
// no seeds and every other replica seeds on replica 0 alone; gossiped views
// discover the rest. The failure detector runs on the target's logical clock
// (one tick per round; suspect after 3 idle ticks, dead after 6), so a
// replica crashed for a multi-round window goes dead on its peers, entries
// owed to it buffer as hints, and its rejoin — a fresh agent with a bumped
// incarnation over the surviving ledger — triggers hint replay the moment it
// digests anyone.
//
// All replicas share the overlay, the base seed and FixedEpochSeed, and
// feedback is stamped from a deterministic submission counter, so once
// watermarks agree and each replica has folded, reputations must match
// across replicas bit for bit — that exact equality, not an envelope, is the
// final convergence check. The whole run is single-threaded (manual
// Exchange/Drain driving), so it replays bit-identically from its seed.
type clusterTarget struct {
	g      *graph.Graph
	hub    *transport.Hub
	svcs   []*service.Service
	nodes  []*cluster.Node // nil while the replica is crashed
	eps    []*transport.ChannelTransport
	faults []*transport.Fault // per-replica send-side fault injector
	names  []string
	upRep  []bool
	alive  []bool // identity liveness, replicas and clients alike
	values *rng.Source

	faultSeed uint64   // base seed for the per-replica fault injectors
	incs      []uint64 // per-replica incarnation, bumped on every attach
	clock     int64    // logical membership clock, one tick per round
	lossP     float64  // current replication-path loss probability
	linkDown  func(from, to int) bool

	rr     int   // round-robin client-routing cursor over replicas
	subSeq int64 // deterministic LWW timestamp source

	epochEvery int
	round      int
	bound      float64

	lastSeq     []uint64 // per-replica folded-seq monotonicity
	lastChecked []uint64 // per-replica epoch already verified
	epochErr    error

	finalized  bool
	finalViols []string
}

// membership thresholds in logical-clock ticks (rounds).
const (
	clusterSuspectTicks = 3
	clusterDeadTicks    = 6
)

func newClusterTarget(cfg Config, g *graph.Graph, seed uint64, values *rng.Source) (*clusterTarget, error) {
	r := cfg.Replicas
	shards := 4
	if shards > g.N() {
		shards = g.N()
	}
	t := &clusterTarget{
		g:           g,
		hub:         transport.NewHub(),
		svcs:        make([]*service.Service, r),
		nodes:       make([]*cluster.Node, r),
		eps:         make([]*transport.ChannelTransport, r),
		faults:      make([]*transport.Fault, r),
		names:       make([]string, r),
		upRep:       make([]bool, r),
		alive:       make([]bool, g.N()),
		values:      values,
		faultSeed:   seed ^ 0xc1f5_7e11, // decorrelated from the epoch seed
		incs:        make([]uint64, r),
		lossP:       cfg.LossProb,
		epochEvery:  cfg.EpochEvery,
		bound:       50 * cfg.Epsilon, // same envelope as the service target
		lastSeq:     make([]uint64, r),
		lastChecked: make([]uint64, r),
	}
	for i := range t.alive {
		t.alive[i] = true
	}
	for i := 0; i < r; i++ {
		t.names[i] = fmt.Sprintf("replica-%d", i)
	}
	for i := 0; i < r; i++ {
		svc, err := service.New(service.Config{
			Graph: g,
			Params: core.Params{
				Epsilon:  cfg.Epsilon,
				LossProb: cfg.LossProb,
				Seed:     seed,
				Workers:  cfg.Workers,
			},
			Shards:         shards,
			Replicate:      true,
			FixedEpochSeed: true,
			Origin:         t.names[i],
		})
		if err != nil {
			return nil, err
		}
		t.svcs[i] = svc
		if err := t.attach(i); err != nil {
			return nil, err
		}
		t.upRep[i] = true
	}
	return t, nil
}

// attach registers replica i's hub endpoint, fault injector and replication
// agent. Seeding is single-point: replica 0 starts with no peers at all and
// everyone else knows only replica 0 — the rest of the membership arrives by
// gossip. Every attach bumps the replica's incarnation, so a rejoin is
// distinguishable from the stalled pre-crash generation.
func (t *clusterTarget) attach(i int) error {
	ep, err := t.hub.Endpoint(t.names[i])
	if err != nil {
		return err
	}
	t.incs[i]++
	ft := transport.NewFault(ep, t.faultSeed+uint64(i)<<32+t.incs[i])
	ft.SetDropProb(t.lossP)
	if t.linkDown != nil {
		ft.SetLinkFault(t.linkPredicate())
	}
	var seeds []string
	if i != 0 {
		seeds = []string{t.names[0]}
	}
	node, err := cluster.New(cluster.Config{
		Service:      t.svcs[i],
		Transport:    ft,
		Peers:        seeds,
		Now:          func() int64 { return t.clock },
		Incarnation:  t.incs[i],
		SuspectAfter: clusterSuspectTicks,
		DeadAfter:    clusterDeadTicks,
	})
	if err != nil {
		ep.Close()
		return err
	}
	t.eps[i], t.faults[i], t.nodes[i] = ep, ft, node
	return nil
}

// replicaIndex maps a replication address ("replica-%d") back to its
// timeline node index, or -1.
func (t *clusterTarget) replicaIndex(addr string) int {
	for i, nm := range t.names {
		if nm == addr {
			return i
		}
	}
	return -1
}

// linkPredicate adapts the runner's index-based link fault to the transport
// layer's address-based one.
func (t *clusterTarget) linkPredicate() func(from, to string) bool {
	return func(from, to string) bool {
		down := t.linkDown
		if down == nil {
			return false
		}
		fi, ti := t.replicaIndex(from), t.replicaIndex(to)
		if fi < 0 || ti < 0 {
			return false
		}
		return down(fi, ti)
	}
}

// nextUpReplica advances the round-robin routing cursor by one and returns
// the first up replica at or after it, or -1 when the whole cluster is down.
// The cursor advances whether or not the submission goes through, so routing
// is a pure function of the timeline.
func (t *clusterTarget) nextUpReplica() int {
	r := len(t.svcs)
	start := t.rr
	t.rr = (t.rr + 1) % r
	for k := 0; k < r; k++ {
		if cand := (start + k) % r; t.upRep[cand] {
			return cand
		}
	}
	return -1
}

// nextStamp returns the next deterministic LWW timestamp: a global
// submission counter, which totally orders same-cell conflicts identically
// on every run.
func (t *clusterTarget) nextStamp() int64 {
	t.subSeq++
	return t.subSeq
}

// Step runs one round: a logical-clock tick, client submissions routed
// round-robin across the up replicas, one synchronous anti-entropy exchange,
// and epochs on the configured cadence.
func (t *clusterTarget) Step() bool {
	t.clock++
	var subjects []int
	for j, a := range t.alive {
		if a {
			subjects = append(subjects, j)
		}
	}
	if len(subjects) > 0 {
		for i, a := range t.alive {
			// Draws happen for every identity regardless of outcome so the
			// random stream — and with it the whole run — stays aligned
			// whatever the membership does. The routing cursor likewise
			// advances on every attempt.
			if !t.values.Bool(0.3) {
				continue
			}
			j := subjects[t.values.Intn(len(subjects))]
			v := t.values.Float64()
			home := t.nextUpReplica()
			if !a || j == i || home < 0 {
				continue // dead client, self-rating, or whole cluster down
			}
			if _, err := t.svcs[home].SubmitAt(i, j, v, t.nextStamp()); err != nil {
				t.epochErr = err
				break
			}
		}
	}
	t.antiEntropy()
	t.round++
	if t.round%t.epochEvery == 0 {
		for r, up := range t.upRep {
			if !up {
				continue
			}
			if _, _, err := t.svcs[r].RunEpoch(); err != nil {
				t.epochErr = err
			}
		}
	}
	return true
}

// antiEntropy runs one synchronous exchange: every live replica digests,
// then two drain passes so digests become batches and batches apply within
// the same round.
func (t *clusterTarget) antiEntropy() {
	for r, up := range t.upRep {
		if up {
			t.nodes[r].Exchange()
		}
	}
	for pass := 0; pass < 2; pass++ {
		for r, up := range t.upRep {
			if up {
				t.nodes[r].Drain()
			}
		}
	}
}

func (t *clusterTarget) checkNode(i int) error {
	if i < 0 || i >= len(t.alive) {
		return fmt.Errorf("scenario: node %d out of range [0,%d)", i, len(t.alive))
	}
	return nil
}

func (t *clusterTarget) Join(int) error {
	return fmt.Errorf("scenario: the cluster target has fixed membership; use rejoin-style churn")
}

// Crash takes identity i down. For a replica that closes its hub endpoint —
// in-flight messages to it start failing, exactly like a dead TCP peer —
// while its service (ledger, snapshots) survives for the rejoin, the
// in-memory stand-in for a WAL-backed process restart.
func (t *clusterTarget) Crash(i int) error {
	if err := t.checkNode(i); err != nil {
		return err
	}
	t.alive[i] = false
	if i < len(t.upRep) && t.upRep[i] {
		t.upRep[i] = false
		t.faults[i].Close() // closes the hub endpoint underneath
		t.nodes[i].Close()
		t.nodes[i] = nil
	}
	return nil
}

// Leave is a graceful shutdown; for this target it is indistinguishable from
// a crash (the ledger is durable either way).
func (t *clusterTarget) Leave(i int) error { return t.Crash(i) }

// Rejoin brings identity i back; a replica re-registers its endpoint and a
// fresh replication agent whose next digest pulls everything it missed.
func (t *clusterTarget) Rejoin(i int) error {
	if err := t.checkNode(i); err != nil {
		return err
	}
	t.alive[i] = true
	if i < len(t.upRep) && !t.upRep[i] {
		if err := t.attach(i); err != nil {
			return err
		}
		t.upRep[i] = true
	}
	return nil
}

// SetLoss changes the replication-path drop probability on every replica's
// fault injector (epoch-internal gossip loss stays fixed at construction).
// Dropped batches are recovered by the watermark pull, dropped digests by
// the next round's exchange, so loss slows convergence without breaking it.
func (t *clusterTarget) SetLoss(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("scenario: replication loss %v out of [0,1)", p)
	}
	t.lossP = p
	for i, up := range t.upRep {
		if up {
			t.faults[i].SetDropProb(p)
		}
	}
	return nil
}

// SetLinkFault installs (or, with nil, heals) a pairwise partition on the
// replication path. The runner's predicate speaks timeline node indices;
// replicas translate their peer addresses back through replicaIndex, and
// sends touching a client index (never a replication address) pass through.
func (t *clusterTarget) SetLinkFault(down func(from, to int) bool) error {
	t.linkDown = down
	for i, up := range t.upRep {
		if !up {
			continue
		}
		if down == nil {
			t.faults[i].SetLinkFault(nil)
		} else {
			t.faults[i].SetLinkFault(t.linkPredicate())
		}
	}
	return nil
}

// Collude floods each member's lie ratings through the round-robin cursor —
// the federated shape of the paper's group-inflation attack, with the lies
// entering the cluster wherever the routing happens to land.
func (t *clusterTarget) Collude(group []int, lie float64) error {
	if lie < 0 || lie > 1 {
		return fmt.Errorf("scenario: collusion lie %v out of [0,1]", lie)
	}
	for _, i := range group {
		for _, j := range group {
			if i == j {
				continue
			}
			home := t.nextUpReplica()
			if home < 0 {
				continue
			}
			if _, err := t.svcs[home].SubmitAt(i, j, lie, t.nextStamp()); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *clusterTarget) RefreshTopology() {}

// Check verifies, per live replica, what the service target verifies for its
// single service: the folded sequence number is monotone, and each freshly
// published epoch tracks the exact reference on its own frozen columns
// within the envelope.
func (t *clusterTarget) Check(float64) (float64, []string) {
	var violations []string
	if t.epochErr != nil {
		violations = append(violations, fmt.Sprintf("epoch error: %v", t.epochErr))
		t.epochErr = nil
	}
	worst := 0.0
	for r, up := range t.upRep {
		if !up {
			continue
		}
		v := t.svcs[r].View()
		if v.Seq() < t.lastSeq[r] {
			violations = append(violations, fmt.Sprintf("replica %d folded seq went backwards: %d after %d", r, v.Seq(), t.lastSeq[r]))
		}
		t.lastSeq[r] = v.Seq()
		if v.Epoch() == 0 || v.Epoch() == t.lastChecked[r] {
			continue
		}
		t.lastChecked[r] = v.Epoch()
		if w := viewRefErr(v); w > worst {
			worst = w
			if w > t.bound {
				violations = append(violations, fmt.Sprintf("replica %d epoch %d deviates %.3e from reference (bound %.3e)", r, v.Epoch(), w, t.bound))
			}
		}
	}
	return worst, violations
}

// finalize drains the cluster to quiescence — anti-entropy rounds until
// every live replica holds identical watermarks and no message moves — then
// folds one last epoch on each. It runs once, triggered by the end-of-run
// accessors.
func (t *clusterTarget) finalize() {
	if t.finalized {
		return
	}
	t.finalized = true
	anyUp := false
	for _, up := range t.upRep {
		anyUp = anyUp || up
	}
	if !anyUp {
		return
	}
	quiesced := false
	for iter := 0; iter < 200 && !quiesced; iter++ {
		t.antiEntropy()
		// Watermark agreement across live replicas IS full replication:
		// equal maps mean every replica's mark for each origin equals that
		// origin's own self-mark, i.e. everyone holds everything. Any batch
		// still in flight after that can only be a harmless duplicate.
		var ref map[string]uint64
		quiesced = true
		for r, up := range t.upRep {
			if !up {
				continue
			}
			m := t.nodes[r].Stats().Marks
			if ref == nil {
				ref = m
			} else if !reflect.DeepEqual(ref, m) {
				quiesced = false
			}
		}
	}
	if !quiesced {
		t.finalViols = append(t.finalViols, "cluster watermarks never converged in finalize")
	}
	for r, up := range t.upRep {
		if !up {
			continue
		}
		if _, _, err := t.svcs[r].RunEpoch(); err != nil {
			t.finalViols = append(t.finalViols, fmt.Sprintf("replica %d final epoch: %v", r, err))
		}
	}
}

// Reputations returns the converged per-identity reputations as served by
// the first live replica (all live replicas serve identical values once
// finalize has run — ReferenceErr asserts it).
func (t *clusterTarget) Reputations() []float64 {
	t.finalize()
	out := make([]float64, t.g.N())
	for r, up := range t.upRep {
		if !up {
			continue
		}
		v := t.svcs[r].View()
		for j := range out {
			out[j], _ = v.Reputation(j)
		}
		break
	}
	return out
}

// ReferenceErr reports the worst cross-replica divergence after the final
// drain: with a shared seed and FixedEpochSeed, converged replicas must be
// bit-identical, so anything above zero is a replication defect. A cluster
// that failed to quiesce reports +Inf.
func (t *clusterTarget) ReferenceErr([]bool) float64 {
	t.finalize()
	if len(t.finalViols) > 0 {
		return math.Inf(1)
	}
	var views []*service.View
	for r, up := range t.upRep {
		if up {
			views = append(views, t.svcs[r].View())
		}
	}
	if len(views) < 2 {
		return 0
	}
	worst := 0.0
	for j := 0; j < t.g.N(); j++ {
		base, err := views[0].Reputation(j)
		if err != nil {
			return math.Inf(1)
		}
		for _, v := range views[1:] {
			got, err := v.Reputation(j)
			if err != nil {
				return math.Inf(1)
			}
			if d := math.Abs(got - base); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func (t *clusterTarget) Messages() gossip.Messages { return gossip.Messages{} }

// Close tears the fault wrappers (and the hub endpoints underneath), agents
// and services down.
func (t *clusterTarget) Close() error {
	var first error
	for r, up := range t.upRep {
		if up {
			t.faults[r].Close()
			t.nodes[r].Close()
		}
	}
	for _, svc := range t.svcs {
		if err := svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ target = (*clusterTarget)(nil)
