package scenario

import (
	"math"
	"reflect"
	"testing"
)

// TestClusterCrashRejoinConverges is the federation acceptance scenario: a
// 3-replica cluster under client churn loses replica 1 mid-run, gets it
// back, and still converges — every live replica ends bit-identical
// (FinalErr exactly 0) with no invariant violations.
func TestClusterCrashRejoinConverges(t *testing.T) {
	res, err := Run(Config{
		Target:     TargetCluster,
		N:          36,
		Rounds:     60,
		Epsilon:    1e-6,
		Seed:       42,
		EpochEvery: 6,
		Script: []Event{
			{Round: 10, Kind: KindCrash, Node: 1},  // replica 1 dies
			{Round: 20, Kind: KindCrash, Node: 17}, // a client drops too
			{Round: 34, Kind: KindRejoin, Node: 1}, // replica 1 returns
			{Round: 40, Kind: KindRejoin, Node: 17},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Crashes != 2 || res.Rejoins != 2 {
		t.Fatalf("executed %d crashes / %d rejoins, want 2 / 2\nlog:\n%v", res.Crashes, res.Rejoins, res.Log)
	}
	if res.FinalErr != 0 {
		t.Fatalf("replicas diverged: FinalErr = %v (must be bit-identical)", res.FinalErr)
	}
	rated := 0
	for _, v := range res.Reputations {
		if v > 0 {
			rated++
		}
	}
	if rated == 0 {
		t.Fatal("no reputation ever formed")
	}
}

// TestClusterScenarioReplays pins determinism: the same config replays to a
// bit-identical result, including the event log and final reputations.
func TestClusterScenarioReplays(t *testing.T) {
	cfg := Config{
		Target:     TargetCluster,
		N:          24,
		Rounds:     40,
		Epsilon:    1e-5,
		Seed:       7,
		EpochEvery: 5,
		Script: []Event{
			{Round: 8, Kind: KindCrash, Node: 2},
			{Round: 22, Kind: KindRejoin, Node: 2},
			{Round: 30, Kind: KindCollude, Frac: 0.2, Value: 0.95},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		t.Fatalf("event logs differ:\n%v\n%v", a.Log, b.Log)
	}
	if !reflect.DeepEqual(a.Reputations, b.Reputations) {
		t.Fatal("final reputations differ between identical runs")
	}
	if a.FinalErr != b.FinalErr || math.IsInf(a.FinalErr, 1) {
		t.Fatalf("FinalErr %v vs %v", a.FinalErr, b.FinalErr)
	}
}

// TestClusterRejectsUnsupportedEvents: the cluster target must refuse the
// events it cannot model rather than silently ignoring them.
func TestClusterRejectsUnsupportedEvents(t *testing.T) {
	for _, ev := range []Event{
		{Round: 1, Kind: KindJoin},
		{Round: 1, Kind: KindLoss, Value: 0.2},
		{Round: 1, Kind: KindPartition, Span: 2},
	} {
		_, err := Run(Config{
			Target: TargetCluster, N: 12, Rounds: 5, Seed: 1,
			Script: []Event{ev},
		})
		if err == nil {
			t.Fatalf("event %v silently accepted", ev.Kind)
		}
	}
}
