package scenario

import (
	"math"
	"reflect"
	"testing"

	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// TestClusterCrashRejoinConverges is the federation acceptance scenario: a
// 3-replica cluster under client churn loses replica 1 mid-run, gets it
// back, and still converges — every live replica ends bit-identical
// (FinalErr exactly 0) with no invariant violations.
func TestClusterCrashRejoinConverges(t *testing.T) {
	res, err := Run(Config{
		Target:     TargetCluster,
		N:          36,
		Rounds:     60,
		Epsilon:    1e-6,
		Seed:       42,
		EpochEvery: 6,
		Script: []Event{
			{Round: 10, Kind: KindCrash, Node: 1},  // replica 1 dies
			{Round: 20, Kind: KindCrash, Node: 17}, // a client drops too
			{Round: 34, Kind: KindRejoin, Node: 1}, // replica 1 returns
			{Round: 40, Kind: KindRejoin, Node: 17},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Crashes != 2 || res.Rejoins != 2 {
		t.Fatalf("executed %d crashes / %d rejoins, want 2 / 2\nlog:\n%v", res.Crashes, res.Rejoins, res.Log)
	}
	if res.FinalErr != 0 {
		t.Fatalf("replicas diverged: FinalErr = %v (must be bit-identical)", res.FinalErr)
	}
	rated := 0
	for _, v := range res.Reputations {
		if v > 0 {
			rated++
		}
	}
	if rated == 0 {
		t.Fatal("no reputation ever formed")
	}
}

// TestClusterScenarioReplays pins determinism: the same config replays to a
// bit-identical result, including the event log and final reputations.
func TestClusterScenarioReplays(t *testing.T) {
	cfg := Config{
		Target:     TargetCluster,
		N:          24,
		Rounds:     40,
		Epsilon:    1e-5,
		Seed:       7,
		EpochEvery: 5,
		Script: []Event{
			{Round: 8, Kind: KindCrash, Node: 2},
			{Round: 22, Kind: KindRejoin, Node: 2},
			{Round: 30, Kind: KindCollude, Frac: 0.2, Value: 0.95},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		t.Fatalf("event logs differ:\n%v\n%v", a.Log, b.Log)
	}
	if !reflect.DeepEqual(a.Reputations, b.Reputations) {
		t.Fatal("final reputations differ between identical runs")
	}
	if a.FinalErr != b.FinalErr || math.IsInf(a.FinalErr, 1) {
		t.Fatalf("FinalErr %v vs %v", a.FinalErr, b.FinalErr)
	}
}

// TestClusterRejectsUnsupportedEvents: the cluster target must refuse the
// events it cannot model rather than silently ignoring them. (Loss and
// partition used to be in this list; they now apply to the replication path
// — see TestClusterMembershipThrash.)
func TestClusterRejectsUnsupportedEvents(t *testing.T) {
	for _, ev := range []Event{
		{Round: 1, Kind: KindJoin},
	} {
		_, err := Run(Config{
			Target: TargetCluster, N: 12, Rounds: 5, Seed: 1,
			Script: []Event{ev},
		})
		if err == nil {
			t.Fatalf("event %v silently accepted", ev.Kind)
		}
	}
}

// thrashConfig is the membership-thrash acceptance scenario: a 5-replica
// cluster bootstrapped from a single seed rides out continuous kill/respawn
// churn, a multi-round dead-replica window long past the dead threshold
// (so peers buffer hints and replay them on the rejoin), replication-path
// packet loss, and a partition — while clients keep submitting round-robin
// across whatever replicas are up.
var thrashConfig = Config{
	Target:     TargetCluster,
	N:          40,
	Rounds:     70,
	Epsilon:    1e-6,
	Seed:       99,
	EpochEvery: 7,
	Replicas:   5,
	Script: []Event{
		{Round: 5, Kind: KindLoss, Value: 0.15},
		{Round: 8, Kind: KindCrash, Node: 1}, // quick bounce
		{Round: 10, Kind: KindRejoin, Node: 1},
		{Round: 12, Kind: KindCrash, Node: 2}, // overlapping bounce
		{Round: 15, Kind: KindRejoin, Node: 2},
		{Round: 16, Kind: KindCrash, Node: 3},  // the long dead window:
		{Round: 30, Kind: KindRejoin, Node: 3}, // 14 rounds ≫ dead threshold
		{Round: 34, Kind: KindPartition, Span: 6, Frac: 0.4},
		{Round: 44, Kind: KindLoss, Value: 0},
		{Round: 46, Kind: KindCrash, Node: 4}, // churn after the heal too
		{Round: 52, Kind: KindRejoin, Node: 4},
		{Round: 55, Kind: KindCollude, Frac: 0.2, Value: 0.95},
	},
}

// TestClusterMembershipThrash runs the thrash timeline and requires exact
// convergence: every live replica serves bit-identical reputations
// (FinalErr exactly 0) with no invariant violations, despite round-robin
// client routing — the LWW total order, not any routing discipline, is what
// makes the replicas agree.
func TestClusterMembershipThrash(t *testing.T) {
	res, err := Run(thrashConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Crashes != 4 || res.Rejoins != 4 {
		t.Fatalf("executed %d crashes / %d rejoins, want 4 / 4\nlog:\n%v", res.Crashes, res.Rejoins, res.Log)
	}
	if res.FinalErr != 0 {
		t.Fatalf("replicas diverged under thrash: FinalErr = %v (must be bit-identical)", res.FinalErr)
	}
	rated := 0
	for _, v := range res.Reputations {
		if v > 0 {
			rated++
		}
	}
	if rated == 0 {
		t.Fatal("no reputation ever formed under thrash")
	}
}

// TestClusterMembershipThrashReplays: the thrash timeline — faults, hints,
// LWW conflicts and all — is a pure function of its seed.
func TestClusterMembershipThrashReplays(t *testing.T) {
	a, err := Run(thrashConfig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(thrashConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		t.Fatalf("event logs differ:\n%v\n%v", a.Log, b.Log)
	}
	if !reflect.DeepEqual(a.Reputations, b.Reputations) {
		t.Fatal("final reputations differ between identical thrash runs")
	}
	if a.FinalErr != b.FinalErr {
		t.Fatalf("FinalErr %v vs %v", a.FinalErr, b.FinalErr)
	}
}

// TestClusterDeadWindowExercisesHints drives the target directly to pin that
// a multi-round dead window actually flows through hinted handoff: while
// replica 1 is dead its peers buffer hints, and its rejoin replays them.
func TestClusterDeadWindowExercisesHints(t *testing.T) {
	cfg := (&Config{
		Target: TargetCluster, N: 20, Epsilon: 1e-6,
		EpochEvery: 5, Replicas: 3,
	}).withDefaults()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: cfg.N, M: cfg.M, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := newClusterTarget(cfg, g, 17, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	for r := 0; r < 8; r++ { // membership warms up, feedback flows
		tgt.Step()
	}
	if err := tgt.Crash(1); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < clusterDeadTicks+4; r++ { // well past the dead threshold
		tgt.Step()
	}
	hinted := uint64(0)
	for i, up := range tgt.upRep {
		if up {
			hinted += uint64(tgt.nodes[i].Stats().HintedEntries)
		}
	}
	if hinted == 0 {
		t.Fatalf("no hints buffered during the dead window; stats: %+v", tgt.nodes[0].Stats())
	}
	if err := tgt.Rejoin(1); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		tgt.Step()
	}
	replayed := uint64(0)
	for i, up := range tgt.upRep {
		if up && i != 1 {
			replayed += tgt.nodes[i].Stats().HintsReplayed
		}
	}
	if replayed == 0 {
		t.Fatalf("hints never replayed after the rejoin; stats: %+v", tgt.nodes[0].Stats())
	}
	if got := tgt.ReferenceErr(nil); got != 0 {
		t.Fatalf("replicas diverged after handoff: ReferenceErr = %v", got)
	}
}
