package scenario

import (
	"fmt"
	"math"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// TargetKind selects which engine a scenario drives.
type TargetKind int

const (
	// TargetScalar drives the scalar push-sum Engine averaging one value
	// per node (the Fig. 3/4 workload class under churn).
	TargetScalar TargetKind = iota
	// TargetVector drives the VectorEngine aggregating all subjects at
	// once (the collusion-figure workload class under churn).
	TargetVector
	// TargetService drives the reputation service's epoch loop under
	// ingest-side churn (raters joining and departing the feedback stream).
	TargetService
	// TargetCluster drives a federated dgserve cluster — R replicas
	// replicating their ledgers by anti-entropy over the in-memory hub —
	// under replica crash/rejoin and client churn. Crash/rejoin of node
	// i < Replicas takes replica i down and back; higher ids are light
	// clients that enter and leave the feedback stream.
	TargetCluster
)

// String implements fmt.Stringer.
func (k TargetKind) String() string {
	switch k {
	case TargetScalar:
		return "scalar"
	case TargetVector:
		return "vector"
	case TargetService:
		return "service"
	case TargetCluster:
		return "cluster"
	default:
		return fmt.Sprintf("target(%d)", int(k))
	}
}

// ParseTargetKind maps the CLI names back to kinds.
func ParseTargetKind(s string) (TargetKind, error) {
	switch s {
	case "", "scalar":
		return TargetScalar, nil
	case "vector":
		return TargetVector, nil
	case "service":
		return TargetService, nil
	case "cluster":
		return TargetCluster, nil
	default:
		return 0, fmt.Errorf("scenario: unknown target %q (want scalar|vector|service|cluster)", s)
	}
}

// target is the runner's view of the system under test. Engine targets map
// events onto the gossip churn hooks; the service target maps them onto the
// feedback ingest stream.
type target interface {
	// Step advances one round; reports whether the protocol is still
	// running.
	Step() bool
	// Join admits node id (already wired into the runner's graph).
	Join(id int) error
	Crash(i int) error
	Leave(i int) error
	// Rejoin returns departed node i with fresh (whitewashed) state.
	Rejoin(i int) error
	SetLoss(p float64) error
	SetLinkFault(f func(from, to int) bool) error
	// Collude makes every group member swap its state for the lie.
	Collude(group []int, lie float64) error
	// RefreshTopology re-derives degree-dependent protocol state after the
	// overlay changed.
	RefreshTopology()
	// Check verifies the target's invariants (mass conservation for the
	// engines, snapshot-vs-reference consistency for the service) and
	// returns the worst relative error seen plus any violations of tol.
	Check(tol float64) (worst float64, violations []string)
	// Reputations is the current per-identity reputation vector.
	Reputations() []float64
	// ReferenceErr is the worst absolute deviation of an alive node's
	// estimate from the exact reference value implied by current state.
	ReferenceErr(alive []bool) float64
	Messages() gossip.Messages
	Close() error
}

func newTarget(cfg Config, g *graph.Graph, gossipSeed uint64, values *rng.Source) (target, error) {
	switch cfg.Target {
	case TargetScalar:
		return newScalarTarget(cfg, g, gossipSeed, values)
	case TargetVector:
		return newVectorTarget(cfg, g, gossipSeed, values)
	case TargetService:
		return newServiceTarget(cfg, g, gossipSeed, values)
	case TargetCluster:
		return newClusterTarget(cfg, g, gossipSeed, values)
	default:
		return nil, fmt.Errorf("scenario: unknown target kind %d", int(cfg.Target))
	}
}

// relErr is the relative mass-conservation error |got−want| / max(1, |want|).
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if w := math.Abs(want); w > 1 {
		return d / w
	}
	return d
}

// ---------------------------------------------------------------------------
// Scalar target: one value per node, unit weights — the dynamic-membership
// network average. Joins and whitewashes draw fresh values.
// ---------------------------------------------------------------------------

type scalarTarget struct {
	e      *gossip.Engine
	values *rng.Source
}

func newScalarTarget(cfg Config, g *graph.Graph, seed uint64, values *rng.Source) (*scalarTarget, error) {
	n := g.N()
	y0 := make([]float64, n)
	g0 := make([]float64, n)
	for i := range y0 {
		y0[i] = values.Float64()
		g0[i] = 1
	}
	e, err := gossip.NewEngine(gossip.Config{
		Graph:    g,
		Epsilon:  cfg.Epsilon,
		LossProb: cfg.LossProb,
		Seed:     seed,
	}, y0, g0)
	if err != nil {
		return nil, err
	}
	return &scalarTarget{e: e, values: values}, nil
}

func (t *scalarTarget) Step() bool { return t.e.Step() }

func (t *scalarTarget) Join(id int) error {
	got, err := t.e.AddNode(t.values.Float64(), 1)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("scenario: engine assigned node %d, graph assigned %d", got, id)
	}
	return nil
}

func (t *scalarTarget) Crash(i int) error { return t.e.Crash(i) }
func (t *scalarTarget) Leave(i int) error { return t.e.Leave(i) }

func (t *scalarTarget) Rejoin(i int) error {
	return t.e.Rejoin(i, t.values.Float64(), 1)
}

func (t *scalarTarget) SetLoss(p float64) error { return t.e.SetLossProb(p) }

func (t *scalarTarget) SetLinkFault(f func(from, to int) bool) error {
	t.e.SetLinkFault(f)
	return nil
}

func (t *scalarTarget) Collude(group []int, lie float64) error {
	for _, i := range group {
		p := t.e.Held(i)
		if err := t.e.Override(i, lie*p.G, p.G); err != nil {
			return err
		}
	}
	return nil
}

func (t *scalarTarget) RefreshTopology() { t.e.RefreshFanouts() }

func (t *scalarTarget) Check(tol float64) (float64, []string) {
	base, inj, lost := t.e.MassLedger()
	var violations []string
	worst := 0.0
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"massY", t.e.MassY(), base.Y + inj.Y - lost.Y},
		{"massG", t.e.MassG(), base.G + inj.G - lost.G},
	} {
		e := relErr(c.got, c.want)
		if e > worst {
			worst = e
		}
		if e > tol {
			violations = append(violations, fmt.Sprintf("%s drift %.3e (got %v want %v)", c.name, e, c.got, c.want))
		}
	}
	return worst, violations
}

func (t *scalarTarget) Reputations() []float64 { return t.e.Estimates() }

func (t *scalarTarget) ReferenceErr(alive []bool) float64 {
	mg := t.e.MassG()
	if mg == 0 {
		return 0
	}
	ref := t.e.MassY() / mg
	worst := 0.0
	for i, a := range alive {
		if !a {
			continue
		}
		if d := math.Abs(t.e.Estimate(i) - ref); d > worst {
			worst = d
		}
	}
	return worst
}

func (t *scalarTarget) Messages() gossip.Messages { return t.e.Messages() }
func (t *scalarTarget) Close() error              { return nil }

// ---------------------------------------------------------------------------
// Vector target: every node rates its overlay neighbours and all subjects
// aggregate at once. Joins and whitewashes rate the neighbours they attach
// to, so new campaigns stay consistent with the overlay.
// ---------------------------------------------------------------------------

type vectorTarget struct {
	e      *gossip.VectorEngine
	g      *graph.Graph
	values *rng.Source
}

func newVectorTarget(cfg Config, g *graph.Graph, seed uint64, values *rng.Source) (*vectorTarget, error) {
	n := g.N()
	y0 := make([][]float64, n)
	g0 := make([][]float64, n)
	for i := 0; i < n; i++ {
		y0[i] = make([]float64, n)
		g0[i] = make([]float64, n)
		for _, j := range g.Neighbors(i) {
			y0[i][j] = values.Float64()
			g0[i][j] = 1
		}
	}
	e, err := gossip.NewVectorEngine(gossip.Config{
		Graph:    g,
		Epsilon:  cfg.Epsilon,
		LossProb: cfg.LossProb,
		Seed:     seed,
		Workers:  cfg.Workers,
	}, y0, g0)
	if err != nil {
		return nil, err
	}
	return &vectorTarget{e: e, g: g, values: values}, nil
}

func (t *vectorTarget) Step() bool { return t.e.Step() }

// ratedRows builds fresh per-subject vectors for node id rating exactly its
// current overlay neighbours, sized to n slots.
func (t *vectorTarget) ratedRows(id, n int) (y, g []float64) {
	y = make([]float64, n)
	g = make([]float64, n)
	for _, j := range t.g.Neighbors(id) {
		if j < n {
			y[j] = t.values.Float64()
			g[j] = 1
		}
	}
	return y, g
}

func (t *vectorTarget) Join(id int) error {
	y, g := t.ratedRows(id, t.e.N()+1)
	got, err := t.e.AddNode(y, g)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("scenario: engine assigned node %d, graph assigned %d", got, id)
	}
	return nil
}

func (t *vectorTarget) Crash(i int) error { return t.e.Crash(i) }
func (t *vectorTarget) Leave(i int) error { return t.e.Leave(i) }

func (t *vectorTarget) Rejoin(i int) error {
	y, g := t.ratedRows(i, t.e.N())
	return t.e.Rejoin(i, y, g)
}

func (t *vectorTarget) SetLoss(p float64) error { return t.e.SetLossProb(p) }

func (t *vectorTarget) SetLinkFault(f func(from, to int) bool) error {
	t.e.SetLinkFault(f)
	return nil
}

func (t *vectorTarget) Collude(group []int, lie float64) error {
	in := make(map[int]bool, len(group))
	for _, i := range group {
		in[i] = true
	}
	for _, i := range group {
		y, g := t.e.HeldRow(i)
		for j := range y {
			// Colluders inflate each other's slots while keeping their
			// weight mass, Figs. 5–6's group-inflation attack mid-run.
			if in[j] && j != i {
				y[j] = lie * g[j]
			}
		}
		if err := t.e.Override(i, y, g); err != nil {
			return err
		}
	}
	return nil
}

func (t *vectorTarget) RefreshTopology() { t.e.RefreshFanouts() }

func (t *vectorTarget) Check(tol float64) (float64, []string) {
	var violations []string
	worst := 0.0
	n := t.e.N()
	for j := 0; j < n; j++ {
		base, inj, lost := t.e.MassLedger(j)
		ey := relErr(t.e.MassY(j), base.Y+inj.Y-lost.Y)
		eg := relErr(t.e.MassG(j), base.G+inj.G-lost.G)
		if ey > worst {
			worst = ey
		}
		if eg > worst {
			worst = eg
		}
		if ey > tol || eg > tol {
			violations = append(violations, fmt.Sprintf("subject %d mass drift y=%.3e g=%.3e", j, ey, eg))
		}
	}
	return worst, violations
}

// Reputations reports, per subject, the estimate held by the lowest-
// numbered node that carries weight for it (0 when nobody does) — a
// deterministic observer choice that survives churn.
func (t *vectorTarget) Reputations() []float64 {
	n := t.e.N()
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if v := t.e.Estimate(i, j); v != 0 {
				out[j] = v
				break
			}
		}
	}
	return out
}

func (t *vectorTarget) ReferenceErr(alive []bool) float64 {
	n := t.e.N()
	worst := 0.0
	for j := 0; j < n; j++ {
		mg := t.e.MassG(j)
		if mg == 0 {
			continue
		}
		ref := t.e.MassY(j) / mg
		for i := 0; i < n; i++ {
			if i < len(alive) && !alive[i] {
				continue
			}
			if v := t.e.Estimate(i, j); v != 0 {
				if d := math.Abs(v - ref); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

func (t *vectorTarget) Messages() gossip.Messages { return t.e.Messages() }
func (t *vectorTarget) Close() error              { return nil }
