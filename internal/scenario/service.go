package scenario

import (
	"fmt"
	"math"

	"diffgossip/internal/core"
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
)

// serviceTarget drives the reputation service's epoch loop under ingest-side
// churn: every alive rater keeps submitting feedback about alive subjects,
// an epoch folds the backlog every EpochEvery rounds, and crash/leave/rejoin
// events gate who participates in the stream. The overlay itself is fixed —
// the service owns its graph for the life of the process — so join and
// loss/partition events are rejected; scripts for this target model the
// churn the service actually sees in production, which is clients appearing
// and disappearing, not gossip substrate surgery.
//
// The invariant checked each round is per-shard snapshot consistency: every
// published shard's global reputations must track the exact fixed point
// (core.GlobalRef on that shard's own frozen columns) within a loose
// gossip-error envelope, and the folded sequence number must never move
// backwards.
type serviceTarget struct {
	svc    *service.Service
	alive  []bool
	values *rng.Source

	epochEvery int
	round      int
	bound      float64 // reference-deviation envelope

	lastChecked uint64 // epoch already verified by Check
	lastSeq     uint64
	epochErr    error
}

func newServiceTarget(cfg Config, g *graph.Graph, seed uint64, values *rng.Source) (*serviceTarget, error) {
	svc, err := service.New(service.Config{
		Graph: g,
		Params: core.Params{
			Epsilon:  cfg.Epsilon,
			LossProb: cfg.LossProb,
			Seed:     seed,
			Workers:  cfg.Workers,
		},
	})
	if err != nil {
		return nil, err
	}
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	return &serviceTarget{
		svc:        svc,
		alive:      alive,
		values:     values,
		epochEvery: cfg.EpochEvery,
		// Each per-subject campaign announces convergence once per-node
		// deltas settle within ξ; 50·ξ is a loose envelope that still
		// catches wiring bugs (a dropped batch or torn shard snapshot is
		// orders of magnitude off).
		bound: 50 * cfg.Epsilon,
	}, nil
}

// Step runs one ingest round — every alive rater submits one rating of a
// random alive subject with probability 0.3 — and folds an epoch on the
// configured cadence. The service has no convergence notion, so the
// scenario always runs its full timeline.
func (t *serviceTarget) Step() bool {
	var subjects []int
	for j, a := range t.alive {
		if a {
			subjects = append(subjects, j)
		}
	}
	if len(subjects) > 0 {
		for i, a := range t.alive {
			if !a || !t.values.Bool(0.3) {
				continue
			}
			j := subjects[t.values.Intn(len(subjects))]
			if j == i {
				continue
			}
			if _, err := t.svc.Submit(i, j, t.values.Float64()); err != nil {
				// Surface the error via Check but keep the round counter
				// and epoch cadence advancing — a failing ingest path must
				// not silently freeze the rest of the timeline.
				t.epochErr = err
				break
			}
		}
	}
	t.round++
	if t.round%t.epochEvery == 0 {
		if _, _, err := t.svc.RunEpoch(); err != nil {
			t.epochErr = err
		}
	}
	return true
}

func (t *serviceTarget) checkNode(i int) error {
	if i < 0 || i >= len(t.alive) {
		return fmt.Errorf("scenario: node %d out of range [0,%d)", i, len(t.alive))
	}
	return nil
}

func (t *serviceTarget) Join(int) error {
	return fmt.Errorf("scenario: the service target has a fixed overlay; use rejoin-style churn")
}

func (t *serviceTarget) Crash(i int) error {
	if err := t.checkNode(i); err != nil {
		return err
	}
	t.alive[i] = false
	return nil
}

func (t *serviceTarget) Leave(i int) error { return t.Crash(i) }

func (t *serviceTarget) Rejoin(i int) error {
	if err := t.checkNode(i); err != nil {
		return err
	}
	t.alive[i] = true
	return nil
}

func (t *serviceTarget) SetLoss(float64) error {
	return fmt.Errorf("scenario: the service target fixes epoch loss at construction")
}

func (t *serviceTarget) SetLinkFault(func(from, to int) bool) error {
	return fmt.Errorf("scenario: the service target does not model link faults")
}

// Collude has every group member flood lie ratings about every other member
// into the feedback stream — the service-level shape of the paper's
// group-inflation attack.
func (t *serviceTarget) Collude(group []int, lie float64) error {
	if lie < 0 || lie > 1 {
		return fmt.Errorf("scenario: collusion lie %v out of [0,1]", lie)
	}
	for _, i := range group {
		for _, j := range group {
			if i == j {
				continue
			}
			if _, err := t.svc.Submit(i, j, lie); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *serviceTarget) RefreshTopology() {}

// Check verifies each freshly published epoch once: every shard's globals
// must track core.GlobalRef on its own frozen columns within the envelope
// (the view is snapshot-consistent per shard, so the reference evaluates
// against exactly the trust state each value was computed from), and the
// folded sequence number must be monotone. The mass tolerance does not
// apply here — the epoch engine's conservation is the engine targets'
// concern — so tol is unused beyond being part of the interface.
func (t *serviceTarget) Check(float64) (float64, []string) {
	var violations []string
	if t.epochErr != nil {
		violations = append(violations, fmt.Sprintf("epoch error: %v", t.epochErr))
		t.epochErr = nil
	}
	v := t.svc.View()
	if v.Seq() < t.lastSeq {
		violations = append(violations, fmt.Sprintf("folded seq went backwards: %d after %d", v.Seq(), t.lastSeq))
	}
	t.lastSeq = v.Seq()
	if v.Epoch() == 0 || v.Epoch() == t.lastChecked {
		return 0, violations
	}
	t.lastChecked = v.Epoch()
	worst := t.viewErr(v)
	if worst > t.bound {
		violations = append(violations, fmt.Sprintf("epoch %d deviates %.3e from reference (bound %.3e)", v.Epoch(), worst, t.bound))
	}
	return worst, violations
}

// viewErr is the worst |Global[j] − GlobalRef(j)| over the view's own
// frozen per-shard columns.
func (t *serviceTarget) viewErr(v *service.View) float64 { return viewRefErr(v) }

// viewRefErr is the worst |Global[j] − GlobalRef(j)| over a view's own
// frozen per-shard columns — the snapshot-consistency check shared by the
// service and cluster targets.
func viewRefErr(v *service.View) float64 {
	worst := 0.0
	for j := 0; j < v.N(); j++ {
		got, err := v.Reputation(j)
		if err != nil {
			return math.Inf(1)
		}
		if d := math.Abs(got - core.GlobalRef(v, j)); d > worst {
			worst = d
		}
	}
	return worst
}

func (t *serviceTarget) Reputations() []float64 {
	v := t.svc.View()
	out := make([]float64, v.N())
	for j := range out {
		out[j], _ = v.Reputation(j)
	}
	return out
}

func (t *serviceTarget) ReferenceErr([]bool) float64 {
	return t.viewErr(t.svc.View())
}

func (t *serviceTarget) Messages() gossip.Messages { return gossip.Messages{} }

func (t *serviceTarget) Close() error { return t.svc.Close() }

// ensure interface compliance
var (
	_ target = (*scalarTarget)(nil)
	_ target = (*vectorTarget)(nil)
	_ target = (*serviceTarget)(nil)
)
