// Package scenario is the deterministic churn & fault engine: it drives a
// gossip run — the scalar engine, the vector engine, or the service epoch
// loop — through a scripted or randomized timeline of membership and network
// events, checking protocol invariants after every round.
//
// The event vocabulary covers the dynamics the paper's static-overlay
// evaluation leaves out (its §5.3 robustness figures inject packet loss and
// collusion on a fixed membership):
//
//	join       a new peer arrives and wires into the overlay by
//	           preferential attachment (graph.AttachPreferential), so the
//	           power-law shape the paper's theorems need is preserved
//	leave      a peer departs gracefully, handing its gossip mass to an
//	           alive neighbour first
//	crash      a peer dies mid-round; the push-sum mass it held is lost
//	rejoin     a departed peer returns with a fresh identity and fresh
//	           state — the paper's whitewashing adversary
//	loss       the global per-push loss probability changes (Fig. 4's knob,
//	           but switchable mid-run)
//	partition  the alive peers split into two cells; cross-cell pushes fail
//	           until the partition heals
//	collude    a group of alive peers swaps its held state for an inflated
//	           lie (Figs. 5–6's adversary, formed mid-run under churn)
//
// Determinism is the load-bearing property: every random choice — event
// placement, node selection, join wiring, engine gossip — flows from one
// seed through rng.Source.Split, so a Result (event log, final reputations,
// mass ledgers) is a pure function of its Config and replays bit-identically.
//
// After every round the runner checks mass conservation against the
// engines' churn ledgers: total mass must equal base + injected − lost
// (crashes destroy exactly the mass the dead node held; lost packets are
// re-absorbed by their senders) up to floating-point accumulation error.
// Violations are collected, not fatal, so a broken engine produces a
// diagnosable Result.
package scenario

import (
	"fmt"
	"sort"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
)

// Kind enumerates scenario event types.
type Kind int

const (
	// KindJoin admits a new node via preferential attachment.
	KindJoin Kind = iota
	// KindCrash kills a node abruptly; its held mass is lost.
	KindCrash
	// KindLeave removes a node gracefully; its mass is handed off.
	KindLeave
	// KindRejoin returns a departed node with fresh (whitewashed) state.
	KindRejoin
	// KindLoss sets the global per-push loss probability to Value.
	KindLoss
	// KindPartition splits the alive nodes into two cells for Span rounds
	// (Frac of them in the minority cell); cross-cell pushes fail.
	KindPartition
	// KindHeal removes an active partition.
	KindHeal
	// KindCollude forms a collusion group of Frac of the alive nodes, each
	// swapping its held state for the lie Value.
	KindCollude
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindCrash:
		return "crash"
	case KindLeave:
		return "leave"
	case KindRejoin:
		return "rejoin"
	case KindLoss:
		return "loss"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindCollude:
		return "collude"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PickNode lets the runner choose an eligible node at execution time (a
// deterministic draw over the then-current membership), which keeps
// randomized scripts valid as membership evolves.
const PickNode = -1

// Event is one timeline entry.
type Event struct {
	// Round is the 0-based round before which the event fires.
	Round int
	// Kind selects the event type.
	Kind Kind
	// Node is the target node for crash/leave/rejoin, or PickNode to let
	// the runner pick an eligible node deterministically.
	Node int
	// Value is the loss probability (KindLoss) or the collusion lie
	// (KindCollude).
	Value float64
	// Span is the partition duration in rounds (KindPartition); 0 lasts
	// until an explicit KindHeal.
	Span int
	// Frac is the fraction of alive nodes in the minority partition cell or
	// the collusion group.
	Frac float64
}

// Config parameterises a scenario run.
type Config struct {
	// Target selects which engine the scenario drives.
	Target TargetKind
	// N and M size the initial preferential-attachment overlay (M is the
	// arrival edge count; default 2, the paper's minimum).
	N, M int
	// Rounds is the timeline length; the run may stop earlier once the
	// protocol converges and no events remain. Default 200.
	Rounds int
	// Epsilon is the gossip convergence bound ξ (default 1e-3).
	Epsilon float64
	// LossProb is the initial per-push loss probability.
	LossProb float64
	// Seed drives everything.
	Seed uint64
	// Script is an explicit event list; it is merged with the events Plan
	// generates and sorted by round (stably, so same-round order is the
	// script's, then the plan's).
	Script []Event
	// Plan, when non-zero, generates a randomized timeline (see Plan).
	Plan Plan
	// MassTol is the relative mass-conservation tolerance checked every
	// round (default 1e-8; push-sum redistribution accrues rounding error
	// linear in rounds × N).
	MassTol float64
	// EpochEvery is the service and cluster targets' epoch cadence in
	// rounds (default 8).
	EpochEvery int
	// Replicas is the cluster target's replica count (default 3): nodes
	// 0..Replicas-1 of the timeline are dgserve replicas, the rest are
	// feedback clients homed on replica id mod Replicas.
	Replicas int
	// Workers parallelises the vector engine's accumulation (same
	// convention as gossip.Config.Workers; results are identical).
	Workers int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.M == 0 {
		out.M = 2
	}
	if out.Rounds == 0 {
		out.Rounds = 200
	}
	if out.Epsilon == 0 {
		out.Epsilon = 1e-3
	}
	if out.MassTol == 0 {
		out.MassTol = 1e-8
	}
	if out.EpochEvery == 0 {
		out.EpochEvery = 8
	}
	if out.Replicas == 0 {
		out.Replicas = 3
	}
	return out
}

func (c *Config) validate() error {
	if c.N < 3 {
		return fmt.Errorf("scenario: N=%d too small", c.N)
	}
	if c.M < 1 || c.N <= c.M {
		return fmt.Errorf("scenario: need 1 <= M < N, got M=%d N=%d", c.M, c.N)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("scenario: rounds %d < 1", c.Rounds)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("scenario: loss probability %v out of [0,1)", c.LossProb)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("scenario: epsilon %v must be > 0", c.Epsilon)
	}
	if c.Target == TargetCluster && (c.Replicas < 1 || c.Replicas > c.N) {
		return fmt.Errorf("scenario: cluster replicas %d out of [1,%d]", c.Replicas, c.N)
	}
	return nil
}

// Result is a finished scenario run. Two runs of the same Config are
// bit-identical in every field.
type Result struct {
	// Rounds is the number of gossip rounds executed.
	Rounds int
	// Converged reports whether the protocol had stopped by the end.
	Converged bool
	// Alive is the final alive-node count; N is the final overlay size.
	Alive, N int
	// Joins/Crashes/Leaves/Rejoins/Colluders tally executed events.
	Joins, Crashes, Leaves, Rejoins, Colluders int
	// Log is the deterministic event log, one line per executed (or
	// skipped) event plus partition heals.
	Log []string
	// Reputations is the final per-identity reputation vector (estimates
	// for engine targets, snapshot globals for the service target); 0 for
	// departed identities.
	Reputations []float64
	// MaxMassErr is the worst relative mass-conservation error observed
	// across all per-round checks.
	MaxMassErr float64
	// FinalErr is the worst absolute deviation of an alive node's estimate
	// from the target's reference value at the end of the run (the
	// convergence-to-reference bound; large if churn struck near the end).
	FinalErr float64
	// Violations lists invariant breaches (empty on a healthy run).
	Violations []string
	// Messages is the engine's transmission tally (zero for the service
	// target, which accounts per epoch).
	Messages gossip.Messages
}

// Run builds the overlay and target, expands the timeline, and drives the
// scenario to completion.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	root := rng.New(cfg.Seed)
	graphSeed := root.Split().Uint64()
	planSrc := root.Split()  // event placement
	pickSrc := root.Split()  // node selection at execution time
	valueSrc := root.Split() // initial values / join state / feedback
	gossipSeed := root.Split().Uint64()

	g, err := graph.PreferentialAttachment(graph.PAConfig{N: cfg.N, M: cfg.M, Seed: graphSeed})
	if err != nil {
		return nil, err
	}

	events := append(append([]Event(nil), cfg.Script...), cfg.Plan.expand(cfg.N, cfg.Rounds, planSrc)...)
	for i := range events {
		if events[i].Round < 0 || events[i].Round >= cfg.Rounds {
			return nil, fmt.Errorf("scenario: event %d round %d out of [0,%d)", i, events[i].Round, cfg.Rounds)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })

	tgt, err := newTarget(cfg, g, gossipSeed, valueSrc)
	if err != nil {
		return nil, err
	}
	defer tgt.Close()

	r := &runner{
		cfg:    cfg,
		g:      g,
		tgt:    tgt,
		events: events,
		pick:   pickSrc,
		alive:  make([]bool, cfg.N),
		res:    &Result{},
	}
	for i := range r.alive {
		r.alive[i] = true
	}
	return r.run()
}

// runner holds the mutable state of one scenario execution.
type runner struct {
	cfg    Config
	g      *graph.Graph
	tgt    target
	events []Event
	pick   *rng.Source
	alive  []bool
	cells  []int // partition cell per node; nil when no partition is active
	healAt int   // round the active partition auto-heals (-1: explicit heal)
	res    *Result
}

func (r *runner) aliveCount() int {
	n := 0
	for _, a := range r.alive {
		if a {
			n++
		}
	}
	return n
}

func (r *runner) logf(format string, args ...any) {
	r.res.Log = append(r.res.Log, fmt.Sprintf(format, args...))
}

// pickNode draws a uniform node with want-alive status, or -1 when none
// qualifies. One rng draw when candidates exist.
func (r *runner) pickNode(wantAlive bool) int {
	count := 0
	for _, a := range r.alive {
		if a == wantAlive {
			count++
		}
	}
	if count == 0 || (wantAlive && count == 1) {
		// Never take the last alive node down.
		return -1
	}
	k := r.pick.Intn(count)
	for i, a := range r.alive {
		if a == wantAlive {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func (r *runner) run() (*Result, error) {
	next := 0
	round := 0
	running := true
	for ; round < r.cfg.Rounds; round++ {
		// Auto-heal an expired partition before this round's events.
		if r.cells != nil && r.healAt >= 0 && round >= r.healAt {
			if err := r.heal(round); err != nil {
				return nil, err
			}
		}
		for next < len(r.events) && r.events[next].Round == round {
			if err := r.apply(round, r.events[next]); err != nil {
				return nil, err
			}
			next++
		}
		running = r.tgt.Step()
		worst, violations := r.tgt.Check(r.cfg.MassTol)
		if worst > r.res.MaxMassErr {
			r.res.MaxMassErr = worst
		}
		for _, v := range violations {
			r.res.Violations = append(r.res.Violations, fmt.Sprintf("r=%d %s", round, v))
		}
		if !running && next == len(r.events) && r.cells == nil {
			round++
			break
		}
	}
	r.res.Rounds = round
	r.res.Converged = !running
	r.res.Alive = r.aliveCount()
	r.res.N = len(r.alive)
	r.res.Reputations = r.tgt.Reputations()
	r.res.FinalErr = r.tgt.ReferenceErr(r.alive)
	r.res.Messages = r.tgt.Messages()
	return r.res, nil
}

// apply executes one event against the runner's membership state and the
// target. Events that cannot fire (no eligible node) are logged and skipped,
// so randomized timelines remain valid as membership evolves.
func (r *runner) apply(round int, ev Event) error {
	switch ev.Kind {
	case KindJoin:
		id := graph.AttachPreferential(r.g, r.cfg.M, r.pick, func(v int) bool { return r.alive[v] })
		r.alive = append(r.alive, true)
		if r.cells != nil {
			r.cells = append(r.cells, 0) // newcomers land in the majority cell
		}
		if err := r.tgt.Join(id); err != nil {
			return fmt.Errorf("scenario: r=%d join: %w", round, err)
		}
		r.tgt.RefreshTopology()
		r.res.Joins++
		r.logf("r=%d join node=%d deg=%d alive=%d", round, id, r.g.Degree(id), r.aliveCount())
	case KindCrash, KindLeave:
		i := ev.Node
		if i < 0 {
			i = r.pickNode(true)
		} else if i >= len(r.alive) || !r.alive[i] {
			i = -1
		}
		if i < 0 {
			r.logf("r=%d %s skipped (no eligible node)", round, ev.Kind)
			return nil
		}
		var err error
		if ev.Kind == KindCrash {
			err = r.tgt.Crash(i)
			r.res.Crashes++
		} else {
			err = r.tgt.Leave(i)
			r.res.Leaves++
		}
		if err != nil {
			return fmt.Errorf("scenario: r=%d %s: %w", round, ev.Kind, err)
		}
		r.alive[i] = false
		r.logf("r=%d %s node=%d alive=%d", round, ev.Kind, i, r.aliveCount())
	case KindRejoin:
		i := ev.Node
		if i < 0 {
			i = r.pickNode(false)
		} else if i >= len(r.alive) || r.alive[i] {
			i = -1
		}
		if i < 0 {
			r.logf("r=%d rejoin skipped (none down)", round)
			return nil
		}
		if err := r.tgt.Rejoin(i); err != nil {
			return fmt.Errorf("scenario: r=%d rejoin: %w", round, err)
		}
		r.alive[i] = true
		r.res.Rejoins++
		r.logf("r=%d rejoin node=%d alive=%d", round, i, r.aliveCount())
	case KindLoss:
		if err := r.tgt.SetLoss(ev.Value); err != nil {
			return fmt.Errorf("scenario: r=%d loss: %w", round, err)
		}
		r.logf("r=%d loss p=%g", round, ev.Value)
	case KindPartition:
		if err := r.partition(round, ev); err != nil {
			return fmt.Errorf("scenario: r=%d partition: %w", round, err)
		}
	case KindHeal:
		if r.cells == nil {
			r.logf("r=%d heal skipped (no partition)", round)
			return nil
		}
		if err := r.heal(round); err != nil {
			return fmt.Errorf("scenario: r=%d heal: %w", round, err)
		}
	case KindCollude:
		group := r.pickGroup(ev.Frac)
		if len(group) == 0 {
			r.logf("r=%d collude skipped (no eligible nodes)", round)
			return nil
		}
		if err := r.tgt.Collude(group, ev.Value); err != nil {
			return fmt.Errorf("scenario: r=%d collude: %w", round, err)
		}
		r.res.Colluders += len(group)
		r.logf("r=%d collude size=%d lie=%g", round, len(group), ev.Value)
	default:
		return fmt.Errorf("scenario: unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// partition splits the alive nodes into two cells (Frac in the minority
// cell) and installs the cross-cell link fault. A target that does not
// model link faults rejects the event, failing the run — a partition the
// engine silently ignored would masquerade as a fault-free result.
func (r *runner) partition(round int, ev Event) error {
	frac := ev.Frac
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	cells := make([]int, len(r.alive))
	minority := 0
	for i, a := range r.alive {
		if a && r.pick.Bool(frac) {
			cells[i] = 1
			minority++
		}
	}
	err := r.tgt.SetLinkFault(func(from, to int) bool {
		cf, ct := 0, 0
		if from < len(cells) {
			cf = cells[from]
		}
		if to < len(cells) {
			ct = cells[to]
		}
		return cf != ct
	})
	if err != nil {
		return err
	}
	r.cells = cells
	r.healAt = -1
	if ev.Span > 0 {
		r.healAt = round + ev.Span
	}
	r.logf("r=%d partition minority=%d span=%d", round, minority, ev.Span)
	return nil
}

func (r *runner) heal(round int) error {
	if err := r.tgt.SetLinkFault(nil); err != nil {
		return err
	}
	r.cells = nil
	r.healAt = 0
	r.logf("r=%d heal", round)
	return nil
}

// pickGroup draws round(frac·alive) distinct alive nodes in selection order.
func (r *runner) pickGroup(frac float64) []int {
	if frac <= 0 {
		return nil
	}
	var candidates []int
	for i, a := range r.alive {
		if a {
			candidates = append(candidates, i)
		}
	}
	k := int(frac*float64(len(candidates)) + 0.5)
	if k <= 0 {
		k = 1
	}
	if k >= len(candidates) {
		return candidates
	}
	idx := r.pick.Sample(len(candidates), k)
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = candidates[v]
	}
	return out
}
