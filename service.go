package diffgossip

import (
	"diffgossip/internal/service"
	"diffgossip/internal/store"
)

// Service is the long-running form of the library: a reputation service that
// ingests interaction feedback over time and serves reads continuously, built
// as a subject-sharded incremental epoch pipeline. Feedback accumulates in an
// append-only ledger that tracks which subject shards it dirties; the epoch
// scheduler folds the backlog and recomputes only the dirty shards — one
// independent per-subject gossip campaign per rated subject, on the same
// flat VectorEngine kernels as AggregateGlobalAll — and publishes each shard
// snapshot through its own atomic pointer. Reads stitch the current shard
// snapshots into a lock-free composite View, so query latency is independent
// of epoch compute and clean shards cost an epoch nothing. See cmd/dgserve
// for the HTTP daemon and examples/service for library use.
//
// Consistency model: reads are snapshot-consistent per shard — everything
// about one subject derives from a single immutable publication of its
// shard, identified by the (epoch, seq) fold point the View reports for it.
// Feedback becomes visible when its subject's shard next folds; Submit
// returns a ledger sequence number, and the write is folded once
// View.SubjectSeq(subject) reaches it. Because every subject's campaign
// draws its own split randomness stream, sharding changes how much work an
// epoch does, never what it computes.
type Service = service.Service

// ServiceConfig configures NewService. Graph is the gossip overlay; Params
// the per-epoch aggregation settings; EpochInterval the scheduler period
// (zero = epochs run only via RunEpoch); Dir an optional persistence
// directory (feedback is write-ahead logged as JSON lines, shard snapshot
// segments are saved with atomic renames, and pre-shard data dirs are
// migrated in place); Shards the subject-shard count S (subject j belongs
// to shard j mod S); FoldWorkers how many dirty shards fold concurrently.
type ServiceConfig = service.Config

// View is one lock-free composite capture of the published per-shard
// snapshots; see Service.
type View = service.View

// ServiceStats is a lock-free point-in-time observation of the shard
// pipeline (per-shard fold points and timings, backlog, incrementality
// counters); ShardStat is one shard's slice of it.
type ServiceStats = service.Stats

// ShardStat is one shard's statistics entry.
type ShardStat = service.ShardStat

// Feedback is one ledger entry: "Rater places trust Value in Subject".
type Feedback = store.Feedback

// NewService builds a reputation service and starts its epoch scheduler when
// cfg.EpochInterval > 0. Close releases it.
func NewService(cfg ServiceConfig) (*Service, error) {
	return service.New(cfg)
}
