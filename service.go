package diffgossip

import (
	"diffgossip/internal/service"
	"diffgossip/internal/store"
)

// Service is the long-running form of the library: a reputation service that
// ingests interaction feedback over time and serves reads continuously.
// Feedback accumulates in an append-only ledger; a background epoch scheduler
// periodically folds the pending batch into the trust state, recomputes
// reputations with a differential-gossip epoch (the same VectorEngine kernels
// as AggregateGlobalAll), and atomically publishes an immutable Snapshot.
// Reads are lock-free against the published snapshot, so query latency is
// independent of epoch compute. See cmd/dgserve for the HTTP daemon and
// examples/service for library use.
//
// Consistency model: reads are snapshot-consistent — the global and
// personalised views answered between two epoch publications all derive from
// the same frozen trust matrix. Feedback becomes visible at the next epoch
// boundary; Submit returns a ledger sequence number, and the write is folded
// once Snapshot().Seq reaches it.
type Service = service.Service

// ServiceConfig configures NewService. Graph is the gossip overlay; Params
// the per-epoch aggregation settings; EpochInterval the scheduler period
// (zero = epochs run only via RunEpoch); Dir an optional persistence
// directory (feedback is write-ahead logged as JSON lines and snapshots are
// saved with atomic renames, so a restart resumes from the last epoch).
type ServiceConfig = service.Config

// Snapshot is one immutable, versioned publication of the reputation state;
// see Service.
type Snapshot = store.Snapshot

// Feedback is one ledger entry: "Rater places trust Value in Subject".
type Feedback = store.Feedback

// NewService builds a reputation service and starts its epoch scheduler when
// cfg.EpochInterval > 0. Close releases it.
func NewService(cfg ServiceConfig) (*Service, error) {
	return service.New(cfg)
}
