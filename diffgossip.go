// Package diffgossip is the public API of the Differential Gossip Trust
// library — a reproduction of "Reputation Aggregation in Peer-to-Peer Network
// Using Differential Gossip Algorithm" (Gupta & Singh).
//
// The library computes reputations in unstructured peer-to-peer networks by
// gossip aggregation. Its differential push rule — each node pushes to
// k = round(degree / average-neighbour-degree) random neighbours per step —
// converges in O((log2 N)²) steps on power-law (preferential attachment)
// overlays where classic one-push gossip stalls at high-degree nodes, without
// requiring the pulls or power-node discovery that push–pull needs.
//
// # Quick start
//
//	g, _ := diffgossip.NewPANetwork(1000, 2, 42)     // power-law overlay
//	t := diffgossip.NewTrustMatrix(1000)             // direct-interaction trust
//	t.Set(3, 7, 0.9)                                 // node 3 trusts node 7
//	...
//	res, _ := diffgossip.AggregateGlobalAll(g, t, diffgossip.Params{Epsilon: 1e-4, Seed: 1})
//	fmt.Println(res.Reputation[0][7])                // node 0's view of node 7
//
// # Aggregation variants
//
// Four variants mirror the paper's §4.1.2:
//
//   - AggregateGlobal: global reputation of one subject (Algorithm 1).
//   - AggregateGCLR: globally calibrated local reputation of one subject
//     (Algorithm 2) — neighbours' direct feedback enters with confidence
//     weights w = a^(b·t), so each node gets a personalised estimate.
//   - AggregateGlobalAll / AggregateGCLRAll: the same for all subjects
//     simultaneously, gossiping whole vectors.
//
// GlobalReference and GCLRReference evaluate the exact fixed points
// centrally, for testing and error measurement.
//
// # Long-running service
//
// Service wraps the aggregation engines in a continuously available
// reputation service: an append-only feedback ledger, a background epoch
// scheduler, and lock-free snapshot reads. See NewService, the cmd/dgserve
// HTTP daemon, and the examples/service example.
//
// # Distributed deployment
//
// The same protocol runs over real sockets: see the internal/agent and
// internal/transport packages, the cmd/dgnode binary, and the
// examples/distributed example.
package diffgossip

import (
	"diffgossip/internal/core"
	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/trust"
)

// Graph is an undirected overlay topology. See NewPANetwork, NewNetwork and
// Figure2Network for constructors.
type Graph = graph.Graph

// TrustMatrix holds the sparse direct-interaction trust values t_ij ∈ [0,1].
type TrustMatrix = trust.Matrix

// WeightParams are the confidence-weight parameters (a, b) of w = a^(b·t)
// (paper eq. 2) used by the GCLR variants.
type WeightParams = trust.WeightParams

// Params configures an aggregation run; the zero value gets sensible defaults
// (ξ = 1e-4, weights a=10/b=1, differential push, root node 0).
type Params = core.Params

// SingleResult is the outcome of a single-subject aggregation.
type SingleResult = core.SingleResult

// AllResult is the outcome of an all-subjects aggregation.
type AllResult = core.AllResult

// SubjectsResult is the outcome of a subject-subset aggregation
// (AggregateGlobalSubjects).
type SubjectsResult = core.SubjectsResult

// Messages tallies the protocol's transmissions.
type Messages = gossip.Messages

// Protocol selects the gossip push rule.
type Protocol = gossip.Protocol

// Push-rule choices for Params.Protocol.
const (
	// DifferentialPush is the paper's protocol (default).
	DifferentialPush = gossip.DifferentialPush
	// NormalPush is the classic one-push baseline.
	NormalPush = gossip.NormalPush
	// FixedPush pushes to Params.FixedK neighbours every step.
	FixedPush = gossip.FixedPush
	// CeilPush rounds the fan-out ratio up instead of to nearest.
	CeilPush = gossip.CeilPush
)

// DefaultWeightParams is the library default a=10, b=1: weights span [1, 10]
// as trust goes 0 → 1.
var DefaultWeightParams = trust.DefaultWeightParams

// NewPANetwork grows a power-law overlay of n nodes by preferential
// attachment with m edges per arriving node (the paper analyses m >= 2).
func NewPANetwork(n, m int, seed uint64) (*Graph, error) {
	return graph.PreferentialAttachment(graph.PAConfig{N: n, M: m, Seed: seed})
}

// NewNetwork returns an empty overlay on n nodes; add edges with AddEdge.
func NewNetwork(n int) *Graph { return graph.New(n) }

// Figure2Network returns the paper's 10-node worked-example topology.
func Figure2Network() *Graph { return graph.Figure2() }

// NewTrustMatrix returns an empty trust matrix over n nodes.
func NewTrustMatrix(n int) *TrustMatrix { return trust.NewMatrix(n) }

// AggregateGlobal runs Algorithm 1: every node converges to subject's mean
// direct trust over its raters.
func AggregateGlobal(g *Graph, t *TrustMatrix, subject int, p Params) (*SingleResult, error) {
	return core.GlobalSingle(g, t, subject, p)
}

// AggregateGCLR runs Algorithm 2: each node gets a personalised, confidence-
// weighted estimate of the subject's reputation.
func AggregateGCLR(g *Graph, t *TrustMatrix, subject int, p Params) (*SingleResult, error) {
	return core.GCLRSingle(g, t, subject, p)
}

// AggregateGlobalAll runs variant 3: Algorithm 1 for all subjects at once.
func AggregateGlobalAll(g *Graph, t *TrustMatrix, p Params) (*AllResult, error) {
	return core.GlobalAll(g, t, p)
}

// AggregateGCLRAll runs variant 4: Algorithm 2 for all subjects at once.
func AggregateGCLRAll(g *Graph, t *TrustMatrix, p Params) (*AllResult, error) {
	return core.GCLRAll(g, t, p)
}

// AggregateGlobalSubjects runs Algorithm 1 for an arbitrary subject subset:
// one independent per-subject gossip campaign each, with randomness split by
// subject id, so any partition of the subject space reproduces
// AggregateGlobalAll's values for those subjects bit for bit. This is the
// primitive behind the sharded service's incremental epochs.
func AggregateGlobalSubjects(g *Graph, t *TrustMatrix, subjects []int, p Params) (*SubjectsResult, error) {
	return core.GlobalSubjects(g, t, subjects, p)
}

// TrustReader is the read-only trust surface the reference evaluations
// accept: a TrustMatrix, a frozen shard column set, or a service View.
type TrustReader = trust.Reader

// GlobalReference computes Algorithm 1's exact fixed point centrally.
func GlobalReference(t TrustReader, subject int) float64 {
	return core.GlobalRef(t, subject)
}

// GCLRReference computes Algorithm 2's exact fixed point at one observer
// centrally.
func GCLRReference(g *Graph, t TrustReader, observer, subject int, p Params) float64 {
	return core.GCLRRef(g, t, observer, subject, p)
}
