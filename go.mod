module diffgossip

go 1.24
