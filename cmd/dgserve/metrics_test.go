package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/obs"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// scrapeMetrics GETs /metrics and parses the exposition, failing the test on
// transport, status or format problems.
func scrapeMetrics(t *testing.T, client *http.Client, base string) []obs.Family {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	return fams
}

// metricValue finds one sample by exact name and label string.
func metricValue(t *testing.T, fams []obs.Family, name, labels string) float64 {
	t.Helper()
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name == name && s.Labels == labels {
				return s.Value
			}
		}
	}
	t.Fatalf("metric %s{%s} not exposed", name, labels)
	return 0
}

func hasFamily(fams []obs.Family, name string) bool {
	for _, f := range fams {
		if f.Name == name {
			return true
		}
	}
	return false
}

// newInstrumentedMember is newClusterMember plus full instrumentation into a
// fresh registry: service (and its ledger), transport and cluster node, with
// the HTTP layer wired through newClusterServer.
func newInstrumentedMember(t *testing.T, g *graph.Graph, peers []string) (*httptest.Server, *service.Service, *cluster.Node, *transport.TCPTransport) {
	t.Helper()
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Graph:          g,
		Params:         core.Params{Epsilon: 1e-6, Seed: 3},
		Shards:         2,
		Replicate:      true,
		FixedEpochSeed: true,
		Origin:         tr.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(cluster.Config{
		Service: svc, Transport: tr, Peers: peers, Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	tr.Instrument(reg)
	node.Instrument(reg)
	node.Start()
	svc.SetReplicator(node)
	ts := httptest.NewServer(newClusterServer(svc, node, 0, reg))
	t.Cleanup(func() {
		ts.Close()
		node.Close()
		tr.Close()
		svc.Close()
	})
	return ts, svc, node, tr
}

// TestMetricsCoverAllLayers boots a two-node cluster, drives the write path
// through HTTP and replication, and requires the scrape to expose metrics
// from every layer of the stack — HTTP middleware, service epochs, store
// WAL, cluster anti-entropy and TCP transport — as well-formed exposition.
func TestMetricsCoverAllLayers(t *testing.T) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 32, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tsA, svcA, _, tra := newInstrumentedMember(t, g, nil)
	_, svcB, nodeB, _ := newInstrumentedMember(t, g, []string{tra.Addr()})

	resp, body := postJSON(t, tsA.URL+"/v1/feedback", `{"rater":3,"subject":7,"value":0.9}`)
	if resp.StatusCode != 202 {
		t.Fatalf("feedback status %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svcB.ReplicationMarks()[tra.Addr()] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("entry never replicated to B; stats: %+v", nodeB.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := svcA.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	fams := scrapeMetrics(t, tsA.Client(), tsA.URL)
	for _, name := range []string{
		// HTTP layer (dgserve middleware).
		"dgserve_http_requests_total",
		"dgserve_http_request_duration_seconds",
		"dgserve_http_in_flight_requests",
		"dgserve_ready",
		"dgserve_unready_reason",
		// Service layer.
		"diffgossip_service_epochs_total",
		"diffgossip_service_folded_shards_total",
		"diffgossip_service_campaign_steps_total",
		"diffgossip_service_epoch_duration_seconds",
		"diffgossip_service_pending_entries",
		// Store layer.
		"diffgossip_store_ledger_entries_total",
		"diffgossip_store_wal_appends_total",
		"diffgossip_store_hint_log_depth",
		// Cluster layer.
		"diffgossip_cluster_exchanges_total",
		"diffgossip_cluster_entries_applied_total",
		"diffgossip_cluster_members",
		// Transport layer.
		"diffgossip_transport_sends_total",
		"diffgossip_transport_dials_total",
	} {
		if !hasFamily(fams, name) {
			t.Errorf("layer metric %s missing from scrape", name)
		}
	}
	if len(fams) < 25 {
		t.Fatalf("scrape exposes %d families, want >= 25", len(fams))
	}

	// The write path left its marks: one feedback POST counted with a 2xx
	// code, one epoch folded, one ledger entry recorded.
	if got := metricValue(t, fams, "dgserve_http_requests_total", `code="2xx",route="/v1/feedback"`); got != 1 {
		t.Errorf("feedback request count = %v, want 1", got)
	}
	if got := metricValue(t, fams, "diffgossip_service_epochs_total", ""); got != 1 {
		t.Errorf("epochs counter = %v, want 1", got)
	}
	if got := metricValue(t, fams, "diffgossip_store_ledger_entries_total", ""); got != 1 {
		t.Errorf("ledger entries counter = %v, want 1", got)
	}
}

// TestClusterStatsAndMetricsAgree requires /v1/stats and /metrics on the same
// node to tell one story: the replication counters and epoch pipeline state
// exposed to Prometheus must equal the JSON stats — both read the same
// underlying counters, so once the cluster is quiescent on the entry path
// they agree exactly.
func TestClusterStatsAndMetricsAgree(t *testing.T) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 32, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, svcA, _, tra := newInstrumentedMember(t, g, nil)
	tsB, svcB, _, _ := newInstrumentedMember(t, g, []string{tra.Addr()})

	for i := 0; i < 3; i++ {
		if _, err := svcA.Submit(i, 7, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for svcB.ReplicationMarks()[tra.Addr()] < 3 {
		if time.Now().After(deadline) {
			t.Fatal("entries never replicated to B")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := svcB.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	var st statsResponse
	if resp := getJSON(t, tsB.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.Cluster == nil {
		t.Fatal("stats carry no cluster section")
	}
	fams := scrapeMetrics(t, tsB.Client(), tsB.URL)

	// Entry-path counters are quiescent (everything replicated and folded),
	// so JSON and exposition must agree exactly.
	for _, c := range []struct {
		metric string
		want   float64
	}{
		{"diffgossip_cluster_entries_applied_total", float64(st.Cluster.EntriesApplied)},
		{"diffgossip_cluster_entries_duplicate_total", float64(st.Cluster.EntriesDuplicate)},
		{"diffgossip_service_epochs_total", float64(st.Epochs)},
		{"diffgossip_service_folded_shards_total", float64(st.FoldedShards)},
		{"diffgossip_service_folded_subjects_total", float64(st.FoldedSubjects)},
		{"diffgossip_service_pending_entries", float64(st.Pending)},
		{"diffgossip_store_hint_log_depth", float64(st.Cluster.HintedEntries)},
	} {
		if got := metricValue(t, fams, c.metric, ""); got != c.want {
			t.Errorf("%s = %v, /v1/stats says %v", c.metric, got, c.want)
		}
	}
	if st.Cluster.EntriesApplied != 3 {
		t.Fatalf("entries applied = %d, want 3", st.Cluster.EntriesApplied)
	}
}

// TestReadyzAndMetricsAgree drives the readiness probe through
// ready → stalled → recovered and requires the dgserve_ready /
// dgserve_unready_reason gauges to match the probe verdict at every step —
// both are computed by the same readyReasons pass.
func TestReadyzAndMetricsAgree(t *testing.T) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 16, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	// As in TestReadyzStalledScheduler: the server believes a millisecond
	// scheduler exists and the grace has long passed, so one pending entry
	// flips it to stalled.
	srv := httpapi.New(httpapi.Config{
		Service: svc, EpochEvery: time.Millisecond, Registry: reg,
		Started: time.Now().Add(-time.Second),
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	check := func(wantStatus int, wantReady float64, wantStalled float64) {
		t.Helper()
		if r := getJSON(t, ts.URL+"/readyz", nil); r.StatusCode != wantStatus {
			t.Fatalf("/readyz status %d, want %d", r.StatusCode, wantStatus)
		}
		fams := scrapeMetrics(t, client, ts.URL)
		if got := metricValue(t, fams, "dgserve_ready", ""); got != wantReady {
			t.Fatalf("dgserve_ready = %v, want %v", got, wantReady)
		}
		if got := metricValue(t, fams, "dgserve_unready_reason", `reason="scheduler_stalled"`); got != wantStalled {
			t.Fatalf("scheduler_stalled gauge = %v, want %v", got, wantStalled)
		}
		// The other reason gauges exist and stay clear in this scenario.
		for _, reason := range []string{"epoch_pipeline_failed", "membership_degraded"} {
			if got := metricValue(t, fams, "dgserve_unready_reason", `reason="`+reason+`"`); got != 0 {
				t.Fatalf("%s gauge = %v, want 0", reason, got)
			}
		}
	}

	check(http.StatusOK, 1, 0)
	if _, err := svc.Submit(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	check(http.StatusServiceUnavailable, 0, 1)
	if _, _, err := svc.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	check(http.StatusOK, 1, 0)
}

// TestTraceEndpoint folds a few epochs and requires GET /v1/trace to return
// them oldest-first with coherent per-shard timelines.
func TestTraceEndpoint(t *testing.T) {
	ts, svc := newTestServer(t, 40, 0)
	for e := 0; e < 3; e++ {
		for i := 0; i < 4; i++ {
			if _, err := svc.Submit(i, 10*i+e, 0.5); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := svc.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	var tr traceResponse
	if resp := getJSON(t, ts.URL+"/v1/trace", &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if tr.Depth != service.DefaultTraceDepth {
		t.Fatalf("trace depth %d, want %d", tr.Depth, service.DefaultTraceDepth)
	}
	if len(tr.Epochs) != 3 {
		t.Fatalf("trace rows = %d, want 3", len(tr.Epochs))
	}
	for i, row := range tr.Epochs {
		if row.Epoch != uint64(i+1) {
			t.Fatalf("row %d epoch = %d, want %d (oldest first)", i, row.Epoch, i+1)
		}
		if row.Entries != 4 || row.DirtyShards < 1 || len(row.Shards) != row.DirtyShards {
			t.Fatalf("row %d accounting wrong: %+v", i, row)
		}
		if row.DurationNs <= 0 || row.StartUnixNano <= 0 {
			t.Fatalf("row %d has no timing: %+v", i, row)
		}
		for _, sh := range row.Shards {
			if sh.DurationNs <= 0 || sh.Computed <= 0 || !sh.Converged {
				t.Fatalf("row %d shard trace wrong: %+v", i, sh)
			}
			if sh.StartOffsetNs < 0 || sh.StartOffsetNs > row.DurationNs {
				t.Fatalf("row %d shard start offset %d outside epoch window %d", i, sh.StartOffsetNs, row.DurationNs)
			}
		}
	}
}
