package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/obs"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
)

func newTestServer(t *testing.T, n int, interval time.Duration) (*httptest.Server, *service.Service) {
	t.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Graph:         g,
		Params:        core.Params{Epsilon: 1e-6, Seed: 11},
		EpochInterval: interval,
		Shards:        4,
		FoldWorkers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every test server is instrumented into its own registry (names
	// register once per registry), so /metrics is live under every test —
	// including the -race hammer.
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	ts := httptest.NewServer(newClusterServer(svc, nil, interval, reg))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func TestFeedbackEpochQueryFlow(t *testing.T) {
	ts, _ := newTestServer(t, 40, 0)

	// Two ratings of subject 7 (mean 0.6), plus rater 3's direct trust in
	// node 5 — the high rater — which its GCLR view will upweight.
	resp, body := postJSON(t, ts.URL+"/v1/feedback", `{"rater":5,"subject":7,"value":0.9}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("feedback status %d: %s", resp.StatusCode, body)
	}
	var fb feedbackResponse
	if err := json.Unmarshal(body, &fb); err != nil {
		t.Fatal(err)
	}
	if fb.Seq != 1 || fb.Pending != 1 || fb.Epoch != 0 {
		t.Fatalf("feedback response %+v", fb)
	}
	postJSON(t, ts.URL+"/v1/feedback", `{"rater":6,"subject":7,"value":0.3}`)
	postJSON(t, ts.URL+"/v1/feedback", `{"rater":3,"subject":5,"value":0.9}`)

	// Not yet visible: reads serve the epoch-0 snapshot.
	var rep reputationResponse
	getJSON(t, ts.URL+"/v1/reputation/7", &rep)
	if rep.Reputation != 0 || rep.Epoch != 0 {
		t.Fatalf("pre-epoch read %+v", rep)
	}

	// Force an epoch, then the rater-mean appears.
	resp, body = postJSON(t, ts.URL+"/v1/epoch", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch status %d: %s", resp.StatusCode, body)
	}
	var ep epochResponse
	if err := json.Unmarshal(body, &ep); err != nil {
		t.Fatal(err)
	}
	if !ep.Ran || ep.Epoch != 1 || ep.Seq != 3 || ep.Pending != 0 || !ep.Converged {
		t.Fatalf("epoch response %+v", ep)
	}
	getJSON(t, ts.URL+"/v1/reputation/7", &rep)
	if math.Abs(rep.Reputation-0.6) > 1e-2 || rep.Raters != 2 || rep.Epoch != 1 {
		t.Fatalf("post-epoch read %+v", rep)
	}

	// Personalised view: rater 3 trusts node 5, which rated 0.9, so its
	// confidence-weighted GCLR view sits above the plain rater mean.
	var personal reputationResponse
	getJSON(t, ts.URL+"/v1/reputation/7?as=3", &personal)
	if !personal.Personal || personal.As == nil || *personal.As != 3 {
		t.Fatalf("personal read %+v", personal)
	}
	if personal.Reputation <= rep.Reputation {
		t.Fatalf("GCLR view %v not above global %v", personal.Reputation, rep.Reputation)
	}

	// Idempotent epoch: nothing pending, ran=false, same epoch.
	_, body = postJSON(t, ts.URL+"/v1/epoch", "")
	if err := json.Unmarshal(body, &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Ran || ep.Epoch != 1 {
		t.Fatalf("no-op epoch response %+v", ep)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 10, 0)
	for name, check := range map[string]func() *http.Response{
		"non-json feedback": func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/feedback", "not json")
			return r
		},
		"unknown field": func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/feedback", `{"rater":1,"subject":2,"value":0.5,"bogus":1}`)
			return r
		},
		"out-of-range rater": func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/feedback", `{"rater":99,"subject":2,"value":0.5}`)
			return r
		},
		"value above 1": func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/feedback", `{"rater":1,"subject":2,"value":1.5}`)
			return r
		},
		"non-numeric subject": func() *http.Response {
			return getJSON(t, ts.URL+"/v1/reputation/abc", nil)
		},
		"bad as param": func() *http.Response {
			return getJSON(t, ts.URL+"/v1/reputation/2?as=xyz", nil)
		},
	} {
		if resp := check(); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts.URL+"/v1/reputation/99", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("out-of-range subject: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 10, 0)
	var h map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h["ok"] != true {
		t.Fatalf("healthz body %v", h)
	}
}

// TestConcurrentHTTPTraffic hammers POST /v1/feedback, POST
// /v1/feedback/batch and GET /v1/reputation over real HTTP while the
// background scheduler runs epochs — the HTTP-layer face of the service's
// concurrency contract (run under -race in CI). The server runs with a small
// backpressure window, so writers exercise the real 429-retry loop; readers
// poll with If-None-Match and require every ETag — fresh or 304 — to name a
// fold point actually served. Every read must see a complete snapshot: a
// consistent (epoch, seq) pair with the reputation value in range.
func TestConcurrentHTTPTraffic(t *testing.T) {
	const n = 30
	const interval = 2 * time.Millisecond
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Graph:         g,
		Params:        core.Params{Epsilon: 1e-6, Seed: 11},
		EpochInterval: interval,
		Shards:        4,
		FoldWorkers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	// MaxPending far below the write volume: the scheduler drains the window
	// every couple of milliseconds, but bursts between folds shed real 429s
	// that the writers must absorb and retry.
	ts := httptest.NewServer(httpapi.New(httpapi.Config{
		Service: svc, EpochEvery: interval, Registry: reg, MaxPending: 48,
	}))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	client := ts.Client()

	// postAccepted retries through backpressure (429) and gate rejections
	// (503) until the write is accepted — the client half of the overload
	// contract. Anything else is a real failure.
	postAccepted := func(url, body string) error {
		for {
			resp, err := client.Post(url, "application/json", strings.NewReader(body))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				return nil
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				// Retry-After says "next fold" (seconds); at test scale the
				// 2ms scheduler drains far sooner.
				time.Sleep(time.Millisecond)
			default:
				return fmt.Errorf("write status %d", resp.StatusCode)
			}
		}
	}

	// A metrics poller scrapes /metrics at ~1 kHz for the whole hammer; every
	// scrape must parse — well-formed exposition, monotone histogram buckets
	// — proving instrumentation never tears under concurrent load.
	pollerDone := make(chan struct{})
	stopPoller := make(chan struct{})
	go func() {
		defer close(pollerDone)
		scrapes := 0
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopPoller:
				if scrapes == 0 {
					t.Error("metrics poller never scraped")
				}
				return
			case <-tick.C:
				resp, err := client.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := obs.ParseExposition(body); err != nil {
					t.Errorf("scrape %d does not parse: %v", scrapes, err)
					return
				}
				scrapes++
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(100 + w))
			for i := 0; i < 150; i++ {
				body := fmt.Sprintf(`{"rater":%d,"subject":%d,"value":%.4f}`,
					src.Intn(n), src.Intn(n), src.Float64())
				if err := postAccepted(ts.URL+"/v1/feedback", body); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Batch writers share the sequence space and the backpressure window with
	// the single writers: 2 × 30 batches × 5 ratings, JSON-lines encoding.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(300 + w))
			for i := 0; i < 30; i++ {
				var body bytes.Buffer
				for k := 0; k < 5; k++ {
					fmt.Fprintf(&body, "{\"rater\":%d,\"subject\":%d,\"value\":%.4f}\n",
						src.Intn(n), src.Intn(n), src.Float64())
				}
				if err := postAccepted(ts.URL+"/v1/feedback/batch", body.String()); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := rng.New(uint64(200 + r))
			etags := make(map[int]string)
			for i := 0; i < 150; i++ {
				subject := src.Intn(n)
				req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/reputation/%d", ts.URL, subject), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if tag, ok := etags[subject]; ok {
					req.Header.Set("If-None-Match", tag)
				}
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode == http.StatusNotModified {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					// A 304 may only confirm the fold point this reader was
					// actually served earlier — never some invented tag.
					if got := resp.Header.Get("ETag"); got != etags[subject] {
						t.Errorf("304 ETag %q does not match the validator %q", got, etags[subject])
						return
					}
					continue
				}
				var rep reputationResponse
				err = json.NewDecoder(resp.Body).Decode(&rep)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Reputation < 0 || rep.Reputation > 1 {
					t.Errorf("reputation %v out of [0,1]", rep.Reputation)
					return
				}
				if rep.Seq > 0 && rep.Epoch == 0 {
					t.Errorf("torn snapshot over HTTP: seq %d at epoch 0", rep.Seq)
					return
				}
				// The ETag must name exactly the fold point in the body: a
				// conditional revalidation hits only real publications.
				want := fmt.Sprintf(`"%d-%d-%d"`, rep.Shard, rep.Epoch, rep.Seq)
				if got := resp.Header.Get("ETag"); got != want {
					t.Errorf("ETag %q for fold point %s", got, want)
					return
				}
				etags[subject] = want
			}
		}(r)
	}
	wg.Wait()
	close(stopPoller)
	<-pollerDone

	// Everything folds — retried writes included, exactly once each; the
	// final state matches the exact reference.
	if _, _, err := svc.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	v := svc.View()
	if v.Seq() != 900 {
		t.Fatalf("final seq %d, want 900 (600 single + 300 batched)", v.Seq())
	}
	for j := 0; j < n; j++ {
		got, err := v.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-core.GlobalRef(v, j)) > 1e-2 {
			t.Fatalf("subject %d deviates from GlobalReference", j)
		}
	}

	// The stats endpoint reflects the pipeline: every shard folded at least
	// once, nothing pending, and the fold counters advanced.
	var st service.Stats
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.N != n || st.Shards != 4 || st.Pending != 0 || st.DirtyShards != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.FoldedShards == 0 || st.FoldedSubjects == 0 || st.Epochs == 0 {
		t.Fatalf("fold counters never advanced: %+v", st)
	}
	for _, ps := range st.PerShard {
		if ps.Epoch == 0 || ps.ElapsedNs <= 0 {
			t.Fatalf("shard %d never reported a fold: %+v", ps.Shard, ps)
		}
	}
}

func TestLoadgenSmoke(t *testing.T) {
	var out bytes.Buffer
	err := runLoadgen(runConfig{
		n: 60, m: 2, graphSeed: 7, seed: 1, epsilon: 1e-5,
		epoch: 5 * time.Millisecond, workers: 1,
		duration: 200 * time.Millisecond, writers: 2, readers: 2,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// The report is the last JSON object in the output (a banner line
	// precedes it).
	txt := out.String()
	idx := strings.Index(txt, "{")
	if idx < 0 {
		t.Fatalf("no JSON report in output: %q", txt)
	}
	var report loadgenReport
	if err := json.Unmarshal([]byte(txt[idx:]), &report); err != nil {
		t.Fatalf("bad report: %v\n%s", err, txt)
	}
	if report.IngestOps == 0 || report.QueryOps == 0 {
		t.Fatalf("loadgen did no work: %+v", report)
	}
	if report.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", report.Errors)
	}
	if report.FinalEpoch.Epoch == 0 {
		t.Fatalf("no epoch ever ran: %+v", report.FinalEpoch)
	}
}
