package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diffgossip/internal/obs"
	"diffgossip/internal/rng"
)

// loadgenReport is the JSON document -loadgen prints: HTTP-level ingest and
// query throughput against a live dgserve, per-request latency percentiles,
// plus the final epoch's metadata. (The engine-level and service-level
// numbers live in the dgsim -bench-json report; this measures the full HTTP
// stack.) Latencies are client-side — request start to body drained — and
// the percentiles are interpolated from fixed-bucket histograms, so they are
// estimates with bucket-resolution error, not exact order statistics.
//
// Shed and rejected traffic is accounted separately from Errors: a 429 or
// 503 is the server keeping its overload contract, and a 400/413 answered to
// an adversarial probe is the server keeping its limits contract. Errors
// counts only transport failures and statuses the workload did not expect —
// so Errors==0 under adversarial load means the front door behaved.
type loadgenReport struct {
	N            int           `json:"n"`
	Writers      int           `json:"writers"`
	Readers      int           `json:"readers"`
	Batch        int           `json:"batch,omitempty"`
	Rate         float64       `json:"rate,omitempty"`
	Adversarial  bool          `json:"adversarial,omitempty"`
	Duration     time.Duration `json:"duration_ns"`
	IngestOps    int64         `json:"ingest_ops"`
	IngestPerSec float64       `json:"ingest_per_sec"`
	IngestP50Ns  int64         `json:"ingest_p50_ns"`
	IngestP95Ns  int64         `json:"ingest_p95_ns"`
	IngestP99Ns  int64         `json:"ingest_p99_ns"`
	// AcceptedRatings counts ratings, not requests: a batch write that is
	// answered 202 contributes its whole batch here and one op above.
	AcceptedRatings int64   `json:"accepted_ratings"`
	QueryOps        int64   `json:"query_ops"`
	QueryPerSec     float64 `json:"query_per_sec"`
	QueryP50Ns      int64   `json:"query_p50_ns"`
	QueryP95Ns      int64   `json:"query_p95_ns"`
	QueryP99Ns      int64   `json:"query_p99_ns"`
	// NotModified counts conditional reads answered 304 (a query success:
	// the reader's cached value is still the published fold point).
	NotModified int64 `json:"not_modified"`
	// Shed429/Shed503 are writes refused by backpressure and the in-flight
	// gate; Rejected400/Rejected413 are adversarial probes the server
	// correctly turned away. None of these are Errors.
	Shed429     int64 `json:"shed_429"`
	Shed503     int64 `json:"shed_503"`
	Rejected400 int64 `json:"rejected_400"`
	Rejected413 int64 `json:"rejected_413"`
	// SlowLoris is how many trickle-body connections the adversarial mix
	// held open against the server.
	SlowLoris  int64         `json:"slow_loris_conns,omitempty"`
	Errors     int64         `json:"errors"`
	FinalEpoch epochResponse `json:"final_epoch"`
}

// latencyBuckets spans 50µs to ~3.3s in 1.5× steps — finer than DefBuckets
// at the sub-millisecond end, where loopback HTTP requests actually land.
func latencyBuckets() []float64 { return obs.ExponentialBuckets(50e-6, 1.5, 28) }

// quantileNs reads a latency quantile from a histogram in nanoseconds.
func quantileNs(h *obs.Histogram, q float64) int64 { return int64(h.Quantile(q) * 1e9) }

// loadgenCounters is the shared tally the writer, reader and probe
// goroutines fill in; see loadgenReport for what each bucket means.
type loadgenCounters struct {
	ingest, ratings, query   atomic.Int64
	notModified              atomic.Int64
	shed429, shed503         atomic.Int64
	rejected400, rejected413 atomic.Int64
	slowLoris, errs          atomic.Int64
}

// countStatus files a non-2xx write status into the right bucket and reports
// whether the writer should back off before retrying.
func (t *loadgenCounters) countStatus(status int) (backoff bool) {
	switch status {
	case http.StatusTooManyRequests:
		t.shed429.Add(1)
		return true
	case http.StatusServiceUnavailable:
		t.shed503.Add(1)
		return true
	default:
		t.errs.Add(1)
		return false
	}
}

// shedBackoff is how long a loadgen writer sleeps after a 429/503 before
// retrying. Real clients should honor Retry-After (an epoch interval); the
// loadgen clamps far below that so a shedding server still sees sustained
// retry pressure within a few-second run.
const shedBackoff = 5 * time.Millisecond

// runLoadgen drives concurrent feedback writers and reputation readers
// against a dgserve instance for the configured duration, then forces a
// final epoch and reports throughput. -batch switches writers to batched
// ingest, -rate paces them open-loop, and -adversarial mixes in malformed
// and oversized probes, slow-loris connections and hot-subject skew — the
// report's Rejected/Shed buckets then show the server keeping its overload
// contract while Errors stays at transport-level truth.
func runLoadgen(c runConfig, out io.Writer) error {
	base := c.target
	if base == "" {
		svc, err := c.newService("")
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{
			Handler:      c.newHTTPServer(svc, nil),
			ReadTimeout:  c.readTimeout,
			WriteTimeout: c.writeTimeout,
			IdleTimeout:  c.idleTimeout,
		}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "loadgen: in-process dgserve at %s (N=%d, epoch %v)\n", base, c.n, c.epoch)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        c.writers + c.readers,
		MaxIdleConnsPerHost: c.writers + c.readers,
	}}

	var tally loadgenCounters
	ingestHist := obs.NewHistogram(latencyBuckets()...)
	queryHist := obs.NewHistogram(latencyBuckets()...)
	start := time.Now()
	deadline := start.Add(c.duration)
	var wg sync.WaitGroup

	// Open-loop pacing: spread the target arrival rate across the writers,
	// each holding its own ticker so a slow response delays only its share.
	var paceEvery time.Duration
	if c.rate > 0 && c.writers > 0 {
		paceEvery = time.Duration(float64(c.writers) / c.rate * float64(time.Second))
		if paceEvery <= 0 {
			paceEvery = time.Nanosecond
		}
	}
	batch := c.batchSize
	if batch < 1 {
		batch = 1
	}
	// Adversarial hot-subject skew: 80% of ratings land on n/20 subjects, so
	// shard dirtiness — and therefore epoch work — concentrates instead of
	// spreading evenly.
	hotN := c.n / 20
	if hotN < 1 {
		hotN = 1
	}

	for w := 0; w < c.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(0x10000 + w))
			var pace *time.Ticker
			if paceEvery > 0 {
				pace = time.NewTicker(paceEvery)
				defer pace.Stop()
			}
			var body bytes.Buffer
			for time.Now().Before(deadline) {
				if pace != nil {
					select {
					case <-pace.C:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				if c.adversarial && src.Bool(1.0/16) {
					loadgenProbe(client, base, src, &tally)
					continue
				}
				subject := func() int {
					if c.adversarial && src.Bool(0.8) {
						return src.Intn(hotN)
					}
					return src.Intn(c.n)
				}
				body.Reset()
				url := base + "/v1/feedback"
				if batch > 1 {
					url = base + "/v1/feedback/batch"
					body.WriteByte('[')
					for i := 0; i < batch; i++ {
						if i > 0 {
							body.WriteByte(',')
						}
						fmt.Fprintf(&body, `{"rater":%d,"subject":%d,"value":%.6f}`,
							src.Intn(c.n), subject(), src.Float64())
					}
					body.WriteByte(']')
				} else {
					fmt.Fprintf(&body, `{"rater":%d,"subject":%d,"value":%.6f}`,
						src.Intn(c.n), subject(), src.Float64())
				}
				reqStart := time.Now()
				resp, err := client.Post(url, "application/json", &body)
				if err != nil {
					tally.errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					if tally.countStatus(resp.StatusCode) {
						time.Sleep(shedBackoff)
					}
					continue
				}
				ingestHist.Observe(time.Since(reqStart).Seconds())
				tally.ingest.Add(1)
				tally.ratings.Add(int64(batch))
			}
		}(w)
	}
	for r := 0; r < c.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := rng.New(uint64(0x20000 + r))
			etags := make(map[int]string) // per-subject fold-point ETags, per reader
			for time.Now().Before(deadline) {
				subject := src.Intn(c.n)
				personal := src.Bool(0.25) // every fourth read asks for the GCLR view
				url := fmt.Sprintf("%s/v1/reputation/%d", base, subject)
				if personal {
					url = fmt.Sprintf("%s?as=%d", url, src.Intn(c.n))
				}
				req, err := http.NewRequest(http.MethodGet, url, nil)
				if err != nil {
					tally.errs.Add(1)
					continue
				}
				if !personal {
					if tag, ok := etags[subject]; ok {
						req.Header.Set("If-None-Match", tag)
					}
				}
				reqStart := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					tally.errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				switch resp.StatusCode {
				case http.StatusOK:
					if tag := resp.Header.Get("ETag"); tag != "" && !personal {
						etags[subject] = tag
					}
				case http.StatusNotModified:
					tally.notModified.Add(1)
				default:
					resp.Body.Close()
					if tally.countStatus(resp.StatusCode) {
						time.Sleep(shedBackoff)
					}
					continue
				}
				resp.Body.Close()
				queryHist.Observe(time.Since(reqStart).Seconds())
				tally.query.Add(1)
			}
		}(r)
	}
	if c.adversarial {
		host := strings.TrimPrefix(base, "http://")
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				slowLoris(host, deadline, &tally)
			}()
		}
	}
	wg.Wait()
	// Rates divide by the measured window, not the configured -duration:
	// spawn overhead and requests in flight at the deadline are real time.
	elapsed := time.Since(start)

	// Fold everything that is still pending and grab the final epoch state.
	// Under backpressure more than one fold may be needed to drain.
	var final epochResponse
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/epoch", "application/json", nil)
		if err != nil {
			return fmt.Errorf("final epoch: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("final epoch: status %d: %s", resp.StatusCode, b)
		}
		if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
			resp.Body.Close()
			return fmt.Errorf("final epoch: %w", err)
		}
		resp.Body.Close()
		if final.Pending == 0 || attempt >= 8 {
			break
		}
	}

	secs := elapsed.Seconds()
	report := loadgenReport{
		N:               c.n,
		Writers:         c.writers,
		Readers:         c.readers,
		Batch:           c.batchSize,
		Rate:            c.rate,
		Adversarial:     c.adversarial,
		Duration:        elapsed,
		IngestOps:       tally.ingest.Load(),
		IngestPerSec:    float64(tally.ingest.Load()) / secs,
		IngestP50Ns:     quantileNs(ingestHist, 0.50),
		IngestP95Ns:     quantileNs(ingestHist, 0.95),
		IngestP99Ns:     quantileNs(ingestHist, 0.99),
		AcceptedRatings: tally.ratings.Load(),
		QueryOps:        tally.query.Load(),
		QueryPerSec:     float64(tally.query.Load()) / secs,
		QueryP50Ns:      quantileNs(queryHist, 0.50),
		QueryP95Ns:      quantileNs(queryHist, 0.95),
		QueryP99Ns:      quantileNs(queryHist, 0.99),
		NotModified:     tally.notModified.Load(),
		Shed429:         tally.shed429.Load(),
		Shed503:         tally.shed503.Load(),
		Rejected400:     tally.rejected400.Load(),
		Rejected413:     tally.rejected413.Load(),
		SlowLoris:       tally.slowLoris.Load(),
		Errors:          tally.errs.Load(),
		FinalEpoch:      final,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// loadgenProbe sends one adversarial body — malformed JSON or an oversized
// payload — and checks the server turns it away with the documented status.
// The expected 400/413 goes to its Rejected bucket; anything else (including
// a 2xx, which would mean the limit is not enforced) is an error.
func loadgenProbe(client *http.Client, base string, src *rng.Source, tally *loadgenCounters) {
	var body bytes.Buffer
	want := http.StatusBadRequest
	bucket := &tally.rejected400
	if src.Bool(0.5) {
		// Oversized: leading whitespace pads the single-feedback body past
		// its byte limit before the decoder ever reaches the JSON value.
		body.Write(bytes.Repeat([]byte{' '}, 8192))
		body.WriteString(`{"rater":0,"subject":0,"value":0.5}`)
		want = http.StatusRequestEntityTooLarge
		bucket = &tally.rejected413
	} else {
		body.WriteString(`{"rater":1,"subject":`) // truncated mid-object
	}
	resp, err := client.Post(base+"/v1/feedback", "application/json", &body)
	if err != nil {
		tally.errs.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case want:
		bucket.Add(1)
	case http.StatusTooManyRequests:
		tally.shed429.Add(1) // backpressure outranks body inspection
	case http.StatusServiceUnavailable:
		tally.shed503.Add(1)
	default:
		tally.errs.Add(1)
	}
}

// slowLoris holds one connection open with a trickling request body until
// the deadline: headers complete immediately (so the request occupies an
// in-flight slot), then the promised body arrives one byte at a time. A
// server with read deadlines kills the connection; one without them learns
// why it should have had some.
func slowLoris(host string, deadline time.Time, tally *loadgenCounters) {
	conn, err := net.DialTimeout("tcp", host, time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	tally.slowLoris.Add(1)
	fmt.Fprintf(conn, "POST /v1/feedback HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 4000\r\n\r\n", host)
	for time.Now().Before(deadline) {
		if _, err := conn.Write([]byte{' '}); err != nil {
			return // server hung up — deadlines working as intended
		}
		time.Sleep(50 * time.Millisecond)
	}
}
