package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"diffgossip/internal/obs"
	"diffgossip/internal/rng"
)

// loadgenReport is the JSON document -loadgen prints: HTTP-level ingest and
// query throughput against a live dgserve, per-request latency percentiles,
// plus the final epoch's metadata. (The engine-level and service-level
// numbers live in the dgsim -bench-json report; this measures the full HTTP
// stack.) Latencies are client-side — request start to body drained — and
// the percentiles are interpolated from fixed-bucket histograms, so they are
// estimates with bucket-resolution error, not exact order statistics.
type loadgenReport struct {
	N            int           `json:"n"`
	Writers      int           `json:"writers"`
	Readers      int           `json:"readers"`
	Duration     time.Duration `json:"duration_ns"`
	IngestOps    int64         `json:"ingest_ops"`
	IngestPerSec float64       `json:"ingest_per_sec"`
	IngestP50Ns  int64         `json:"ingest_p50_ns"`
	IngestP95Ns  int64         `json:"ingest_p95_ns"`
	IngestP99Ns  int64         `json:"ingest_p99_ns"`
	QueryOps     int64         `json:"query_ops"`
	QueryPerSec  float64       `json:"query_per_sec"`
	QueryP50Ns   int64         `json:"query_p50_ns"`
	QueryP95Ns   int64         `json:"query_p95_ns"`
	QueryP99Ns   int64         `json:"query_p99_ns"`
	Errors       int64         `json:"errors"`
	FinalEpoch   epochResponse `json:"final_epoch"`
}

// latencyBuckets spans 50µs to ~3.3s in 1.5× steps — finer than DefBuckets
// at the sub-millisecond end, where loopback HTTP requests actually land.
func latencyBuckets() []float64 { return obs.ExponentialBuckets(50e-6, 1.5, 28) }

// quantileNs reads a latency quantile from a histogram in nanoseconds.
func quantileNs(h *obs.Histogram, q float64) int64 { return int64(h.Quantile(q) * 1e9) }

// runLoadgen drives concurrent feedback writers and reputation readers
// against a dgserve instance for the configured duration, then forces a
// final epoch and reports throughput.
func runLoadgen(c runConfig, out io.Writer) error {
	base := c.target
	if base == "" {
		svc, err := c.newService("")
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: newServer(svc)}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "loadgen: in-process dgserve at %s (N=%d, epoch %v)\n", base, c.n, c.epoch)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        c.writers + c.readers,
		MaxIdleConnsPerHost: c.writers + c.readers,
	}}

	var ingest, query, errs atomic.Int64
	ingestHist := obs.NewHistogram(latencyBuckets()...)
	queryHist := obs.NewHistogram(latencyBuckets()...)
	start := time.Now()
	deadline := start.Add(c.duration)
	var wg sync.WaitGroup

	for w := 0; w < c.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(0x10000 + w))
			var body bytes.Buffer
			for time.Now().Before(deadline) {
				body.Reset()
				fmt.Fprintf(&body, `{"rater":%d,"subject":%d,"value":%.6f}`,
					src.Intn(c.n), src.Intn(c.n), src.Float64())
				reqStart := time.Now()
				resp, err := client.Post(base+"/v1/feedback", "application/json", &body)
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs.Add(1)
					continue
				}
				ingestHist.Observe(time.Since(reqStart).Seconds())
				ingest.Add(1)
			}
		}(w)
	}
	for r := 0; r < c.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := rng.New(uint64(0x20000 + r))
			for time.Now().Before(deadline) {
				url := fmt.Sprintf("%s/v1/reputation/%d", base, src.Intn(c.n))
				if src.Bool(0.25) { // every fourth read asks for the GCLR view
					url = fmt.Sprintf("%s?as=%d", url, src.Intn(c.n))
				}
				reqStart := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				queryHist.Observe(time.Since(reqStart).Seconds())
				query.Add(1)
			}
		}(r)
	}
	wg.Wait()
	// Rates divide by the measured window, not the configured -duration:
	// spawn overhead and requests in flight at the deadline are real time.
	elapsed := time.Since(start)

	// Fold everything that is still pending and grab the final epoch state.
	resp, err := client.Post(base+"/v1/epoch", "application/json", nil)
	if err != nil {
		return fmt.Errorf("final epoch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return fmt.Errorf("final epoch: status %d: %s", resp.StatusCode, b)
	}
	var final epochResponse
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		resp.Body.Close()
		return fmt.Errorf("final epoch: %w", err)
	}
	resp.Body.Close()

	secs := elapsed.Seconds()
	report := loadgenReport{
		N:            c.n,
		Writers:      c.writers,
		Readers:      c.readers,
		Duration:     elapsed,
		IngestOps:    ingest.Load(),
		IngestPerSec: float64(ingest.Load()) / secs,
		IngestP50Ns:  quantileNs(ingestHist, 0.50),
		IngestP95Ns:  quantileNs(ingestHist, 0.95),
		IngestP99Ns:  quantileNs(ingestHist, 0.99),
		QueryOps:     query.Load(),
		QueryPerSec:  float64(query.Load()) / secs,
		QueryP50Ns:   quantileNs(queryHist, 0.50),
		QueryP95Ns:   quantileNs(queryHist, 0.95),
		QueryP99Ns:   quantileNs(queryHist, 0.99),
		Errors:       errs.Load(),
		FinalEpoch:   final,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
