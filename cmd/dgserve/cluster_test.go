package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// newClusterMember builds one federated dgserve: service (replicating, fixed
// epoch seed), TCP replication transport, cluster node, HTTP server.
func newClusterMember(t *testing.T, g *graph.Graph, peers []string) (*httptest.Server, *service.Service, *cluster.Node, *transport.TCPTransport) {
	t.Helper()
	// Transport first: its bound address is the service's LWW origin.
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Graph:          g,
		Params:         core.Params{Epsilon: 1e-6, Seed: 3},
		Shards:         2,
		Replicate:      true,
		FixedEpochSeed: true,
		Origin:         tr.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(cluster.Config{
		Service: svc, Transport: tr, Peers: peers, Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	svc.SetReplicator(node)
	ts := httptest.NewServer(newClusterServer(svc, node, 0, nil))
	t.Cleanup(func() {
		ts.Close()
		node.Close()
		tr.Close()
		svc.Close()
	})
	return ts, svc, node, tr
}

// TestHTTPClusterEndToEnd federates two dgserve instances over real TCP and
// proves the full path: feedback POSTed to node A is served — with the exact
// same value — by node B, and B's /v1/stats reports the replication state.
func TestHTTPClusterEndToEnd(t *testing.T) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 32, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A has no peers of its own; B digests A, and pull-based anti-entropy
	// needs nothing more for B to catch up on A's stream.
	tsA, svcA, _, tra := newClusterMember(t, g, nil)
	tsB, svcB, nodeB, _ := newClusterMember(t, g, []string{tra.Addr()})

	resp, body := postJSON(t, tsA.URL+"/v1/feedback", `{"rater":3,"subject":7,"value":0.9}`)
	if resp.StatusCode != 202 {
		t.Fatalf("feedback status %d: %s", resp.StatusCode, body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for svcB.ReplicationMarks()[tra.Addr()] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("entry never replicated to B; stats: %+v", nodeB.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fold on both and read the subject from B.
	if _, _, err := svcA.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svcB.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Reputation float64 `json:"reputation"`
		Raters     int     `json:"raters"`
	}
	if r := getJSON(t, tsB.URL+"/v1/reputation/7", &rep); r.StatusCode != 200 {
		t.Fatalf("reputation status %d", r.StatusCode)
	}
	if math.Abs(rep.Reputation-0.9) > 1e-4 || rep.Raters != 1 {
		t.Fatalf("node B serves %+v, want ~0.9 from 1 rater", rep)
	}
	// And bit-identical to what A itself serves (shared seed + fixed epoch
	// seed: converged replicas answer with the same bits).
	var repA struct {
		Reputation float64 `json:"reputation"`
	}
	if r := getJSON(t, tsA.URL+"/v1/reputation/7", &repA); r.StatusCode != 200 {
		t.Fatalf("reputation status on A %d", r.StatusCode)
	}
	if repA.Reputation != rep.Reputation {
		t.Fatalf("A serves %v, B serves %v — replicas must be bit-identical", repA.Reputation, rep.Reputation)
	}

	// The stats surface carries the cluster section with peer health.
	var st struct {
		Shards  int `json:"shards"`
		Cluster *struct {
			Self           string            `json:"self"`
			Marks          map[string]uint64 `json:"marks"`
			EntriesApplied uint64            `json:"entries_applied"`
			Peers          []struct {
				Addr     string `json:"addr"`
				LastSeen int64  `json:"last_seen_unix_nano"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	if r := getJSON(t, tsB.URL+"/v1/stats", &st); r.StatusCode != 200 {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if st.Cluster == nil {
		t.Fatal("stats response lacks the cluster section")
	}
	if st.Cluster.EntriesApplied != 1 {
		t.Fatalf("cluster stats: %+v, want 1 entry applied", st.Cluster)
	}
	if st.Cluster.Marks[tra.Addr()] != 1 {
		t.Fatalf("cluster marks: %+v, want %s at 1", st.Cluster.Marks, tra.Addr())
	}
	if len(st.Cluster.Peers) == 0 || st.Cluster.Peers[0].LastSeen == 0 {
		t.Fatalf("peer health missing: %+v", st.Cluster.Peers)
	}

	// A standalone server's stats must NOT grow a cluster section.
	var raw map[string]json.RawMessage
	tsSolo, _ := newTestServer(t, 16, 0)
	if r := getJSON(t, tsSolo.URL+"/v1/stats", &raw); r.StatusCode != 200 {
		t.Fatalf("solo stats status %d", r.StatusCode)
	}
	if _, ok := raw["cluster"]; ok {
		t.Fatal("standalone stats unexpectedly carries a cluster section")
	}
}

// TestClusterModeRequiresData: an in-memory ledger restarts from seq 1 and
// peers would discard everything after as duplicates; run() must refuse.
func TestClusterModeRequiresData(t *testing.T) {
	err := run(runConfig{
		listen: "127.0.0.1:0", n: 12, m: 2, epsilon: 1e-4,
		clusterListen: "127.0.0.1:0",
	})
	if err == nil || !strings.Contains(err.Error(), "-data") {
		t.Fatalf("cluster mode without -data: err = %v, want a -data requirement", err)
	}
}

// TestJoinFlagParsing covers the -join list splitting via runConfig wiring.
func TestJoinFlagParsing(t *testing.T) {
	c := runConfig{
		listen: "127.0.0.1:0", n: 12, m: 2, epsilon: 1e-4,
		clusterListen: "127.0.0.1:0",
		peers:         []string{"10.0.0.1:9080", "10.0.0.2:9080"},
		antiEntropy:   time.Hour, // no background churn in the test
	}
	tr, err := transport.ListenTCP(c.clusterListen)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := c.newService(tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.ReplicationMarks() == nil {
		t.Fatal("cluster-mode service was not built with a replicating ledger")
	}
	node, stop, err := c.newCluster(svc, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	st := node.Stats()
	if len(st.Peers) != 2 {
		t.Fatalf("peers = %+v, want the two -join addresses", st.Peers)
	}
	if fmt.Sprint(st.Peers[0].Addr, st.Peers[1].Addr) != "10.0.0.1:908010.0.0.2:9080" {
		t.Fatalf("peer addresses = %+v", st.Peers)
	}
}
