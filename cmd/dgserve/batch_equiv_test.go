package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/service"
)

// TestBatchSingleEquivalence is the batch-ingest correctness property: a set
// of ratings with pinned LWW stamps folds to bit-identical reputations no
// matter how it arrives — one-by-one in submission order on a standalone
// reference, or shuffled, chopped into mixed single/batch requests (array
// and JSON-lines encodings both), and split across two federated replicas.
// Batching is an ingest optimization; it must be invisible to the trust
// computation.
func TestBatchSingleEquivalence(t *testing.T) {
	const n = 32
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// The workload: distinct unix_nano stamps (so last-writer-wins resolves
	// identically everywhere, independent of arrival order and origin
	// tie-breaks), with every fourth rating re-rating the previous pair —
	// real LWW conflicts, not just disjoint cells.
	type rating struct {
		rater, subject int
		value          float64
		ts             int64
	}
	src := rng.New(99)
	ratings := make([]rating, 80)
	for i := range ratings {
		ratings[i] = rating{src.Intn(n), src.Intn(n), src.Float64(), int64(1_000_000 + i*1000)}
	}
	for i := 3; i < len(ratings); i += 4 {
		ratings[i].rater, ratings[i].subject = ratings[i-1].rater, ratings[i-1].subject
	}

	// Reference: a standalone replica-configured service fed every rating
	// singly, in submission order.
	ref, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: 1e-6, Seed: 3},
		Shards: 2, Replicate: true, FixedEpochSeed: true, Origin: "ref",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, r := range ratings {
		if _, err := ref.SubmitAt(r.rater, r.subject, r.value, r.ts); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ref.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	// Cluster: two federated replicas; the same ratings shuffled, cut into
	// random runs, and sent alternately to A and B — runs of one as single
	// POSTs, longer runs as batches, alternating array and JSON-lines bodies.
	tsA, svcA, _, tra := newClusterMember(t, g, nil)
	tsB, svcB, _, trb := newClusterMember(t, g, []string{tra.Addr()})

	shuffled := append([]rating(nil), ratings...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	var sentA, sentB uint64
	for i, flip := 0, 0; i < len(shuffled); flip++ {
		run := 1 + src.Intn(7)
		if i+run > len(shuffled) {
			run = len(shuffled) - i
		}
		target, counter := tsA.URL, &sentA
		if flip%2 == 1 {
			target, counter = tsB.URL, &sentB
		}
		if run == 1 {
			r := shuffled[i]
			body := fmt.Sprintf(`{"rater":%d,"subject":%d,"value":%v,"unix_nano":%d}`, r.rater, r.subject, r.value, r.ts)
			resp, b := postJSON(t, target+"/v1/feedback", body)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("single status %d: %s", resp.StatusCode, b)
			}
		} else {
			var body bytes.Buffer
			lines := flip%4 >= 2 // alternate JSON-lines and array encodings
			if !lines {
				body.WriteByte('[')
			}
			for k := 0; k < run; k++ {
				if k > 0 {
					if lines {
						body.WriteByte('\n')
					} else {
						body.WriteByte(',')
					}
				}
				r := shuffled[i+k]
				fmt.Fprintf(&body, `{"rater":%d,"subject":%d,"value":%v,"unix_nano":%d}`, r.rater, r.subject, r.value, r.ts)
			}
			if !lines {
				body.WriteByte(']')
			}
			resp, err := http.Post(target+"/v1/feedback/batch", "application/json", &body)
			if err != nil {
				t.Fatal(err)
			}
			var br batchResponse
			decodeBody(t, resp, &br)
			if resp.StatusCode != http.StatusAccepted || br.Accepted != run {
				t.Fatalf("batch status %d accepted %d, want 202/%d", resp.StatusCode, br.Accepted, run)
			}
		}
		*counter += uint64(run)
		i += run
	}

	if sentA == 0 || sentB == 0 {
		t.Fatalf("degenerate split: %d to A, %d to B", sentA, sentB)
	}
	// Anti-entropy converges both ways (gossiped membership introduces A to
	// B), then both replicas fold. Origin-stream seqs live in the ledger's
	// global sequence space — replicated entries consume seqs too — so "B has
	// everything from A" means B's watermark for A reaches the seq of A's
	// LAST local entry, not the count of entries A accepted.
	lastA, lastB := svcA.LocalStreamMark(), svcB.LocalStreamMark()
	deadline := time.Now().Add(10 * time.Second)
	for svcB.ReplicationMarks()[tra.Addr()] < lastA || svcA.ReplicationMarks()[trb.Addr()] < lastB {
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: A marks %v (want %d from B), B marks %v (want %d from A)",
				svcA.ReplicationMarks(), lastB, svcB.ReplicationMarks(), lastA)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := svcA.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svcB.RunEpoch(); err != nil {
		t.Fatal(err)
	}

	// Every subject: A == B == reference, to the bit.
	refView, viewA, viewB := ref.View(), svcA.View(), svcB.View()
	for j := 0; j < n; j++ {
		want, err := refView.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		gotA, err := viewA.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := viewB.Reputation(j)
		if err != nil {
			t.Fatal(err)
		}
		if gotA != want || gotB != want {
			t.Fatalf("subject %d: reference %v, A %v, B %v — batching changed the fold", j, want, gotA, gotB)
		}
	}
}

// decodeBody decodes a response body into v and closes it.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		t.Fatalf("bad body %q: %v", buf.String(), err)
	}
}
