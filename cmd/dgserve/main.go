// Command dgserve runs the reputation service as an HTTP/JSON daemon: an
// append-only feedback ledger on the write path, a background epoch scheduler
// folding feedback into differential-gossip recomputes, and lock-free
// snapshot reads on the query path.
//
// Serve mode:
//
//	dgserve -listen :8080 -n 1000 -epoch 2s -data /var/lib/dgserve
//
//	curl -s -X POST localhost:8080/v1/feedback \
//	     -d '{"rater":3,"subject":7,"value":0.9}'
//	curl -s -X POST localhost:8080/v1/epoch          # or wait for -epoch
//	curl -s localhost:8080/v1/reputation/7           # global view
//	curl -s 'localhost:8080/v1/reputation/7?as=3'    # rater 3's GCLR view
//	curl -s localhost:8080/v1/epoch                  # snapshot metadata
//
// Cluster mode federates several dgserve processes into one reputation
// system: each node keeps serving its own HTTP clients while an anti-entropy
// loop (internal/cluster) replicates the feedback ledgers over TCP, so
// feedback submitted to any node becomes readable — with identical values —
// from every node:
//
//	dgserve -listen :8080 -data /var/lib/dg0 -cluster-listen 127.0.0.1:9080 \
//	        -join 127.0.0.1:9081,127.0.0.1:9082
//	dgserve -listen :8081 -data /var/lib/dg1 -cluster-listen 127.0.0.1:9081 \
//	        -join 127.0.0.1:9080,127.0.0.1:9082   # … and so on per node
//
// All nodes must share -n, -m, -graph-seed and -seed (same overlay, same
// epoch randomness); -cluster-listen must be a stable address, since it is
// the node's origin id in peers' ledgers; -data is required, since origin
// sequence numbers must survive restarts (a reset ledger would reuse seqs
// peers have already seen and its new entries would be discarded as
// duplicates). GET /v1/stats gains a "cluster" section with watermarks and
// per-peer health.
//
// Load-generator mode measures service throughput over real HTTP: it spins
// up an in-process server (or targets -target), hammers it with concurrent
// feedback writers and reputation readers for -duration, forces a final
// epoch, and prints a JSON report:
//
//	dgserve -loadgen -n 500 -duration 5s -writers 8 -readers 8
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
		n         = flag.Int("n", 1000, "network size (node ids are 0..n-1)")
		m         = flag.Int("m", 2, "preferential-attachment edges per node for the overlay")
		graphSeed = flag.Uint64("graph-seed", 42, "seed for the overlay topology")
		seed      = flag.Uint64("seed", 1, "base seed for epoch gossip randomness")
		epsilon   = flag.Float64("epsilon", 1e-6, "gossip convergence tolerance ξ")
		epoch     = flag.Duration("epoch", 2*time.Second, "epoch scheduler interval (0 = manual epochs via POST /v1/epoch)")
		workers   = flag.Int("workers", -1, "per-shard gossip workers (-1 = GOMAXPROCS, 1 = sequential)")
		shards    = flag.Int("shards", 1, "subject shards S (subject j belongs to shard j mod S); epochs recompute only dirty shards")
		foldWkrs  = flag.Int("fold-workers", 1, "dirty shards folding concurrently per epoch (-1 = GOMAXPROCS)")
		dataDir   = flag.String("data", "", "persistence directory (empty = in-memory)")

		clusterListen = flag.String("cluster-listen", "", "TCP address for ledger replication; enables cluster mode (use a stable address — it is this node's origin id)")
		join          = flag.String("join", "", "comma-separated peer cluster addresses to replicate with")
		antiEntropy   = flag.Duration("anti-entropy", time.Second, "cluster digest exchange interval (also runs before each scheduled epoch)")

		loadgen  = flag.Bool("loadgen", false, "run the load generator instead of serving")
		duration = flag.Duration("duration", 5*time.Second, "loadgen: how long to generate load")
		writers  = flag.Int("writers", 8, "loadgen: concurrent feedback writers")
		readers  = flag.Int("readers", 8, "loadgen: concurrent reputation readers")
		target   = flag.String("target", "", "loadgen: base URL of an external dgserve (empty = in-process server)")
	)
	flag.Parse()

	var peers []string
	if *join != "" {
		for _, p := range strings.Split(*join, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	if err := run(runConfig{
		listen: *listen, n: *n, m: *m, graphSeed: *graphSeed, seed: *seed,
		epsilon: *epsilon, epoch: *epoch, workers: *workers, shards: *shards,
		foldWorkers: *foldWkrs, dataDir: *dataDir,
		clusterListen: *clusterListen, peers: peers, antiEntropy: *antiEntropy,
		loadgen: *loadgen, duration: *duration, writers: *writers,
		readers: *readers, target: *target,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	listen           string
	n, m             int
	graphSeed, seed  uint64
	epsilon          float64
	epoch            time.Duration
	workers          int
	shards           int
	foldWorkers      int
	dataDir          string
	clusterListen    string
	peers            []string
	antiEntropy      time.Duration
	loadgen          bool
	duration         time.Duration
	writers, readers int
	target           string
}

// newService builds the overlay and the reputation service from flags. In
// cluster mode the service runs with a replicating ledger and fixed epoch
// seeds, so converged replicas serve bit-identical reputations.
func (c runConfig) newService() (*service.Service, error) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: c.n, M: c.m, Seed: c.graphSeed})
	if err != nil {
		return nil, err
	}
	clustered := c.clusterListen != ""
	return service.New(service.Config{
		Graph:          g,
		Params:         core.Params{Epsilon: c.epsilon, Seed: c.seed, Workers: c.workers},
		EpochInterval:  c.epoch,
		Dir:            c.dataDir,
		Shards:         c.shards,
		FoldWorkers:    c.foldWorkers,
		Replicate:      clustered,
		FixedEpochSeed: clustered,
	})
}

// newCluster starts the replication transport and agent when cluster mode is
// on; the returned cleanup closes both. It returns (nil, noop, nil) outside
// cluster mode.
func (c runConfig) newCluster(svc *service.Service) (*cluster.Node, func(), error) {
	if c.clusterListen == "" {
		return nil, func() {}, nil
	}
	tr, err := transport.ListenTCP(c.clusterListen)
	if err != nil {
		return nil, nil, err
	}
	node, err := cluster.New(cluster.Config{
		Service:   svc,
		Transport: tr,
		Peers:     c.peers,
		Interval:  c.antiEntropy,
	})
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	node.Start()
	svc.SetReplicator(node)
	return node, func() {
		svc.SetReplicator(nil)
		node.Close()
		tr.Close()
	}, nil
}

func run(c runConfig) error {
	if c.loadgen {
		return runLoadgen(c, os.Stdout)
	}
	if c.clusterListen != "" && c.dataDir == "" {
		// A replica's origin sequence numbers live in its ledger; an
		// in-memory ledger restarts from seq 1, and peers — whose watermarks
		// survived — would silently discard every post-restart entry as a
		// duplicate. Refuse the foot-gun instead of diverging quietly.
		return fmt.Errorf("cluster mode requires -data: origin sequence numbers must survive restarts")
	}
	svc, err := c.newService()
	if err != nil {
		return err
	}
	defer svc.Close()
	node, stopCluster, err := c.newCluster(svc)
	if err != nil {
		return err
	}
	defer stopCluster()
	fmt.Printf("dgserve: N=%d overlay (m=%d, graph-seed=%d), %d subject shard(s), epoch interval %v, data %q\n",
		c.n, c.m, c.graphSeed, svc.Shards(), c.epoch, c.dataDir)
	if node != nil {
		fmt.Printf("dgserve: cluster node %s replicating with %d peer(s) every %v\n",
			node.Self(), len(c.peers), c.antiEntropy)
	}
	fmt.Printf("dgserve: listening on %s\n", c.listen)
	return http.ListenAndServe(c.listen, newClusterServer(svc, node))
}
