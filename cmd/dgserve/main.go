// Command dgserve runs the reputation service as an HTTP/JSON daemon: an
// append-only feedback ledger on the write path, a background epoch scheduler
// folding feedback into differential-gossip recomputes, and lock-free
// snapshot reads on the query path.
//
// Serve mode:
//
//	dgserve -listen :8080 -n 1000 -epoch 2s -data /var/lib/dgserve
//
//	curl -s -X POST localhost:8080/v1/feedback \
//	     -d '{"rater":3,"subject":7,"value":0.9}'
//	curl -s -X POST localhost:8080/v1/epoch          # or wait for -epoch
//	curl -s localhost:8080/v1/reputation/7           # global view
//	curl -s 'localhost:8080/v1/reputation/7?as=3'    # rater 3's GCLR view
//	curl -s localhost:8080/v1/epoch                  # snapshot metadata
//
// Load-generator mode measures service throughput over real HTTP: it spins
// up an in-process server (or targets -target), hammers it with concurrent
// feedback writers and reputation readers for -duration, forces a final
// epoch, and prints a JSON report:
//
//	dgserve -loadgen -n 500 -duration 5s -writers 8 -readers 8
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/service"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
		n         = flag.Int("n", 1000, "network size (node ids are 0..n-1)")
		m         = flag.Int("m", 2, "preferential-attachment edges per node for the overlay")
		graphSeed = flag.Uint64("graph-seed", 42, "seed for the overlay topology")
		seed      = flag.Uint64("seed", 1, "base seed for epoch gossip randomness")
		epsilon   = flag.Float64("epsilon", 1e-6, "gossip convergence tolerance ξ")
		epoch     = flag.Duration("epoch", 2*time.Second, "epoch scheduler interval (0 = manual epochs via POST /v1/epoch)")
		workers   = flag.Int("workers", -1, "per-shard gossip workers (-1 = GOMAXPROCS, 1 = sequential)")
		shards    = flag.Int("shards", 1, "subject shards S (subject j belongs to shard j mod S); epochs recompute only dirty shards")
		foldWkrs  = flag.Int("fold-workers", 1, "dirty shards folding concurrently per epoch (-1 = GOMAXPROCS)")
		dataDir   = flag.String("data", "", "persistence directory (empty = in-memory)")

		loadgen  = flag.Bool("loadgen", false, "run the load generator instead of serving")
		duration = flag.Duration("duration", 5*time.Second, "loadgen: how long to generate load")
		writers  = flag.Int("writers", 8, "loadgen: concurrent feedback writers")
		readers  = flag.Int("readers", 8, "loadgen: concurrent reputation readers")
		target   = flag.String("target", "", "loadgen: base URL of an external dgserve (empty = in-process server)")
	)
	flag.Parse()

	if err := run(runConfig{
		listen: *listen, n: *n, m: *m, graphSeed: *graphSeed, seed: *seed,
		epsilon: *epsilon, epoch: *epoch, workers: *workers, shards: *shards,
		foldWorkers: *foldWkrs, dataDir: *dataDir,
		loadgen: *loadgen, duration: *duration, writers: *writers,
		readers: *readers, target: *target,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	listen           string
	n, m             int
	graphSeed, seed  uint64
	epsilon          float64
	epoch            time.Duration
	workers          int
	shards           int
	foldWorkers      int
	dataDir          string
	loadgen          bool
	duration         time.Duration
	writers, readers int
	target           string
}

// newService builds the overlay and the reputation service from flags.
func (c runConfig) newService() (*service.Service, error) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: c.n, M: c.m, Seed: c.graphSeed})
	if err != nil {
		return nil, err
	}
	return service.New(service.Config{
		Graph:         g,
		Params:        core.Params{Epsilon: c.epsilon, Seed: c.seed, Workers: c.workers},
		EpochInterval: c.epoch,
		Dir:           c.dataDir,
		Shards:        c.shards,
		FoldWorkers:   c.foldWorkers,
	})
}

func run(c runConfig) error {
	if c.loadgen {
		return runLoadgen(c, os.Stdout)
	}
	svc, err := c.newService()
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("dgserve: N=%d overlay (m=%d, graph-seed=%d), %d subject shard(s), epoch interval %v, data %q\n",
		c.n, c.m, c.graphSeed, svc.Shards(), c.epoch, c.dataDir)
	fmt.Printf("dgserve: listening on %s\n", c.listen)
	return http.ListenAndServe(c.listen, newServer(svc))
}
