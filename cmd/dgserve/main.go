// Command dgserve runs the reputation service as an HTTP/JSON daemon: an
// append-only feedback ledger on the write path, a background epoch scheduler
// folding feedback into differential-gossip recomputes, and lock-free
// snapshot reads on the query path.
//
// Serve mode:
//
//	dgserve -listen :8080 -n 1000 -epoch 2s -data /var/lib/dgserve
//
//	curl -s -X POST localhost:8080/v1/feedback \
//	     -d '{"rater":3,"subject":7,"value":0.9}'
//	curl -s -X POST localhost:8080/v1/epoch          # or wait for -epoch
//	curl -s localhost:8080/v1/reputation/7           # global view
//	curl -s 'localhost:8080/v1/reputation/7?as=3'    # rater 3's GCLR view
//	curl -s localhost:8080/v1/epoch                  # snapshot metadata
//
// Cluster mode federates several dgserve processes into one reputation
// system: each node keeps serving its own HTTP clients while an anti-entropy
// loop (internal/cluster) replicates the feedback ledgers over TCP, so
// feedback submitted to any node becomes readable — with identical values —
// from every node. -join lists seeds, not the full topology: gossiped
// membership discovers the rest of the cluster transitively, so every node
// after the first needs exactly one address:
//
//	dgserve -listen :8080 -data /var/lib/dg0 -cluster-listen 127.0.0.1:9080
//	dgserve -listen :8081 -data /var/lib/dg1 -cluster-listen 127.0.0.1:9081 \
//	        -join 127.0.0.1:9080                  # … and so on per node
//
// All nodes must share -n, -m, -graph-seed and -seed (same overlay, same
// epoch randomness); -cluster-listen must be a stable address, since it is
// the node's origin id in peers' ledgers and the LWW origin tag on its
// entries; -data is required, since origin sequence numbers must survive
// restarts (a reset ledger would reuse seqs peers have already seen and its
// new entries would be discarded as duplicates). Entries owed to a dead peer
// buffer in <data>/hints.jsonl and replay when it returns. GET /v1/stats
// gains a "cluster" section with membership, watermarks and per-peer health;
// GET /readyz reports 503 while a majority of peers look down or the epoch
// scheduler stalls, and SIGTERM drains in-flight HTTP, flushes buffered
// hints, and fsyncs the WAL before exiting.
//
// Load-generator mode measures service throughput over real HTTP: it spins
// up an in-process server (or targets -target), hammers it with concurrent
// feedback writers and reputation readers for -duration, forces a final
// epoch, and prints a JSON report:
//
//	dgserve -loadgen -n 500 -duration 5s -writers 8 -readers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/obs"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
		n            = flag.Int("n", 1000, "network size (node ids are 0..n-1)")
		m            = flag.Int("m", 2, "preferential-attachment edges per node for the overlay")
		graphSeed    = flag.Uint64("graph-seed", 42, "seed for the overlay topology")
		seed         = flag.Uint64("seed", 1, "base seed for epoch gossip randomness")
		epsilon      = flag.Float64("epsilon", 1e-6, "gossip convergence tolerance ξ")
		epoch        = flag.Duration("epoch", 2*time.Second, "epoch scheduler interval (0 = manual epochs via POST /v1/epoch)")
		workers      = flag.Int("workers", -1, "per-shard gossip workers (-1 = GOMAXPROCS, 1 = sequential)")
		shards       = flag.Int("shards", 1, "subject shards S (subject j belongs to shard j mod S); epochs recompute only dirty shards")
		foldWkrs     = flag.Int("fold-workers", 1, "dirty shards folding concurrently per epoch (-1 = GOMAXPROCS)")
		dataDir      = flag.String("data", "", "persistence directory (empty = in-memory)")
		compactEvery = flag.Int("compact-every", 256, "rewrite the WAL keeping only live entries every N persisted epochs (0 = never; needs -data)")

		clusterListen = flag.String("cluster-listen", "", "TCP address for ledger replication; enables cluster mode (use a stable address — it is this node's origin id)")
		join          = flag.String("join", "", "comma-separated seed cluster addresses; the rest of the cluster is discovered via gossiped membership")
		antiEntropy   = flag.Duration("anti-entropy", time.Second, "cluster digest exchange interval (also runs before each scheduled epoch)")
		histTrimEvery = flag.Int("hist-trim-every", 16, "trim fully-acknowledged replication history every N exchanges (0 = never)")
		bootstrapLag  = flag.Uint64("bootstrap-lag", 8192, "request a snapshot-shipped bootstrap when trailing the cluster by more than this many entries (fresh nodes always request; 0 = never request)")

		maxBatch     = flag.Int("max-batch", httpapi.DefaultMaxBatch, "max ratings per POST /v1/feedback/batch (batch bodies beyond it get 413)")
		maxPending   = flag.Int("max-pending", httpapi.DefaultMaxPending, "pending-fold window size beyond which feedback ingest sheds with 429 (negative = unlimited)")
		maxInflight  = flag.Int("max-inflight", httpapi.DefaultMaxInflight, "max concurrently served data-route requests; excess get 503 (negative = unlimited)")
		maxBody      = flag.Int64("max-body", httpapi.DefaultMaxBodyBytes, "max batch request body bytes (oversized bodies get 413)")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: a request (headers+body) slower than this is dropped")
		writeTimeout = flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout: a response slower than this is dropped")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")

		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		pprofAddr  = flag.String("pprof-addr", "", "address for net/http/pprof profiling endpoints (empty = disabled)")
		traceDepth = flag.Int("trace-depth", service.DefaultTraceDepth, "epochs kept in the GET /v1/trace ring (negative = disabled)")

		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of serving")
		duration    = flag.Duration("duration", 5*time.Second, "loadgen: how long to generate load")
		writers     = flag.Int("writers", 8, "loadgen: concurrent feedback writers")
		readers     = flag.Int("readers", 8, "loadgen: concurrent reputation readers")
		target      = flag.String("target", "", "loadgen: base URL of an external dgserve (empty = in-process server)")
		batchSize   = flag.Int("batch", 0, "loadgen: ratings per write (0/1 = single POSTs, >1 = POST /v1/feedback/batch)")
		rate        = flag.Float64("rate", 0, "loadgen: open-loop total write arrival rate per second (0 = closed loop, as fast as accepted)")
		adversarial = flag.Bool("adversarial", false, "loadgen: mix in malformed and oversized bodies, slow-loris writers and hot-subject skew")
	)
	flag.Parse()

	var peers []string
	if *join != "" {
		for _, p := range strings.Split(*join, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	if err := run(runConfig{
		listen: *listen, n: *n, m: *m, graphSeed: *graphSeed, seed: *seed,
		epsilon: *epsilon, epoch: *epoch, workers: *workers, shards: *shards,
		foldWorkers: *foldWkrs, dataDir: *dataDir, compactEvery: *compactEvery,
		clusterListen: *clusterListen, peers: peers, antiEntropy: *antiEntropy,
		histTrimEvery: *histTrimEvery, bootstrapLag: *bootstrapLag,
		maxBatch: *maxBatch, maxPending: *maxPending, maxInflight: *maxInflight,
		maxBody: *maxBody, readTimeout: *readTimeout, writeTimeout: *writeTimeout,
		idleTimeout: *idleTimeout,
		logLevel:    *logLevel, logFormat: *logFormat,
		pprofAddr: *pprofAddr, traceDepth: *traceDepth, reg: obs.Default,
		loadgen: *loadgen, duration: *duration, writers: *writers,
		readers: *readers, target: *target, batchSize: *batchSize,
		rate: *rate, adversarial: *adversarial,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	listen           string
	n, m             int
	graphSeed, seed  uint64
	epsilon          float64
	epoch            time.Duration
	workers          int
	shards           int
	foldWorkers      int
	dataDir          string
	compactEvery     int
	clusterListen    string
	peers            []string
	antiEntropy      time.Duration
	histTrimEvery    int
	bootstrapLag     uint64
	loadgen          bool
	duration         time.Duration
	writers, readers int
	target           string
	// batchSize, rate and adversarial shape the loadgen workload: ratings
	// per write request, open-loop total write arrival rate (0 = closed
	// loop), and whether the adversarial mix (malformed/oversized bodies,
	// slow-loris writers, hot-subject skew) is on.
	batchSize   int
	rate        float64
	adversarial bool

	// The ingress limits (zero values fall back to the httpapi defaults)
	// and http.Server deadlines.
	maxBatch, maxPending, maxInflight int
	maxBody                           int64
	readTimeout, writeTimeout         time.Duration
	idleTimeout                       time.Duration

	// logLevel/logFormat configure the process-wide slog default;
	// empty values skip setup (tests keep their quiet default logger).
	logLevel, logFormat string
	// pprofAddr, when set, serves net/http/pprof on its own listener —
	// profiling stays off the public API surface.
	pprofAddr string
	// traceDepth sizes the epoch trace ring behind GET /v1/trace.
	traceDepth int
	// reg, when set, receives every layer's metrics and is served on
	// GET /metrics. main passes obs.Default; tests pass a fresh registry
	// (or nil for none) since metric names register once per registry.
	reg *obs.Registry

	// ready, when set, is called with the bound HTTP address once the
	// server is accepting connections (tests use it to reach a :0 listener).
	ready func(addr string)
}

// newService builds the overlay and the reputation service from flags. In
// cluster mode the service runs with a replicating ledger, fixed epoch seeds
// — so converged replicas serve bit-identical reputations — and the cluster
// address as its LWW origin tag.
func (c runConfig) newService(origin string) (*service.Service, error) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: c.n, M: c.m, Seed: c.graphSeed})
	if err != nil {
		return nil, err
	}
	clustered := c.clusterListen != ""
	return service.New(service.Config{
		Graph:          g,
		Params:         core.Params{Epsilon: c.epsilon, Seed: c.seed, Workers: c.workers},
		EpochInterval:  c.epoch,
		Dir:            c.dataDir,
		Shards:         c.shards,
		FoldWorkers:    c.foldWorkers,
		Replicate:      clustered,
		FixedEpochSeed: clustered,
		Origin:         origin,
		TraceDepth:     c.traceDepth,
		CompactEvery:   c.compactEvery,
	})
}

// newHTTPServer builds the HTTP front door with the flag-configured ingress
// limits (batch size, body bytes, backpressure window, in-flight gate).
func (c runConfig) newHTTPServer(svc *service.Service, node *cluster.Node) *httpapi.Server {
	return httpapi.New(httpapi.Config{
		Service:      svc,
		Node:         node,
		EpochEvery:   c.epoch,
		Registry:     c.reg,
		MaxBatch:     c.maxBatch,
		MaxBodyBytes: c.maxBody,
		MaxPending:   c.maxPending,
		MaxInflight:  c.maxInflight,
	})
}

// newCluster starts the replication agent over an already-listening
// transport; the returned cleanup closes both. It returns (nil, noop, nil)
// outside cluster mode (tr == nil). The node's incarnation is the boot
// wall-clock, which satisfies the must-increase-across-restarts contract
// without any extra persisted state, and its hint queues are durable in
// <data>/hints.jsonl.
func (c runConfig) newCluster(svc *service.Service, tr *transport.TCPTransport) (*cluster.Node, func(), error) {
	if tr == nil {
		return nil, func() {}, nil
	}
	hintPath := ""
	if c.dataDir != "" {
		hintPath = filepath.Join(c.dataDir, "hints.jsonl")
	}
	node, err := cluster.New(cluster.Config{
		Service:      svc,
		Transport:    tr,
		Peers:        c.peers,
		Interval:     c.antiEntropy,
		Incarnation:  uint64(time.Now().UnixNano()),
		HintPath:     hintPath,
		TrimEvery:    c.histTrimEvery,
		BootstrapLag: c.bootstrapLag,
		Logger:       obs.Logger("cluster"),
	})
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	node.Start()
	svc.SetReplicator(node)
	return node, func() {
		svc.SetReplicator(nil)
		node.Close()
		tr.Close()
	}, nil
}

func run(c runConfig) error {
	if c.logLevel != "" || c.logFormat != "" {
		if err := obs.SetupLogging(c.logLevel, c.logFormat); err != nil {
			return err
		}
	}
	if c.loadgen {
		return runLoadgen(c, os.Stdout)
	}
	logger := obs.Logger("dgserve")
	if c.clusterListen != "" && c.dataDir == "" {
		// A replica's origin sequence numbers live in its ledger; an
		// in-memory ledger restarts from seq 1, and peers — whose watermarks
		// survived — would silently discard every post-restart entry as a
		// duplicate. Refuse the foot-gun instead of diverging quietly.
		return fmt.Errorf("cluster mode requires -data: origin sequence numbers must survive restarts")
	}
	// In cluster mode the replication listener comes up before the service:
	// its bound address is the node's origin id, which the service stamps
	// into LWW tags on locally submitted entries.
	var tr *transport.TCPTransport
	origin := ""
	if c.clusterListen != "" {
		var err error
		if tr, err = transport.ListenTCP(c.clusterListen); err != nil {
			return err
		}
		origin = tr.Addr()
	}
	svc, err := c.newService(origin)
	if err != nil {
		if tr != nil {
			tr.Close()
		}
		return err
	}
	node, stopCluster, err := c.newCluster(svc, tr)
	if err != nil {
		svc.Close()
		return err
	}
	// Instrument every layer into the registry before serving: service (which
	// also registers its ledger's store metrics), transport and cluster.
	// Registration is once-per-registry, matching this process's one run().
	if c.reg != nil {
		svc.Instrument(c.reg)
		if tr != nil {
			tr.Instrument(c.reg)
		}
		if node != nil {
			node.Instrument(c.reg)
		}
	}
	// Shutdown order is the durability order: drain HTTP first (no new
	// writes), then the cluster node (flushes and fsyncs the hint log), then
	// the service (fsyncs the WAL).
	shutdown := func() error {
		stopCluster()
		return svc.Close()
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		shutdown()
		return err
	}
	logger.Info("starting",
		"n", c.n, "m", c.m, "graph_seed", c.graphSeed, "shards", svc.Shards(),
		"epoch_interval", c.epoch.String(), "data", c.dataDir)
	if node != nil {
		logger.Info("cluster enabled",
			"self", node.Self(), "seeds", len(c.peers), "anti_entropy", c.antiEntropy.String())
	}
	if c.pprofAddr != "" {
		pln, err := net.Listen("tcp", c.pprofAddr)
		if err != nil {
			ln.Close()
			shutdown()
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		logger.Info("pprof enabled", "addr", pln.Addr().String())
		go http.Serve(pln, pprofMux())
	}
	logger.Info("listening", "addr", ln.Addr().String())
	// The deadlines bound how long any one connection can hold resources:
	// slow-loris request trickles die at ReadTimeout, stalled consumers of
	// big responses at WriteTimeout, and idle keep-alives at IdleTimeout.
	srv := &http.Server{
		Handler:           c.newHTTPServer(svc, node),
		ReadTimeout:       c.readTimeout,
		ReadHeaderTimeout: c.readTimeout,
		WriteTimeout:      c.writeTimeout,
		IdleTimeout:       c.idleTimeout,
	}
	if c.ready != nil {
		c.ready(ln.Addr().String())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		shutdown()
		return err
	case <-ctx.Done():
		stopSignals() // a second signal kills immediately
		logger.Info("signal received; draining HTTP, flushing hints, syncing WAL")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			shutdown()
			return fmt.Errorf("drain http: %w", err)
		}
		if err := shutdown(); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		logger.Info("clean shutdown")
		return nil
	}
}

// pprofMux serves the net/http/pprof endpoints on a dedicated mux, so
// enabling profiling (-pprof-addr) never exposes it on the public API
// listener and the package's DefaultServeMux registration stays unused.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
