package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeLoadgenReport extracts the JSON report from loadgen output (a banner
// line precedes it).
func decodeLoadgenReport(t *testing.T, out string) loadgenReport {
	t.Helper()
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON report in output: %q", out)
	}
	var report loadgenReport
	if err := json.Unmarshal([]byte(out[idx:]), &report); err != nil {
		t.Fatalf("bad report: %v\n%s", err, out)
	}
	return report
}

// TestLoadgenAdversarial runs the adversarial loadgen — open-loop pacing,
// batched writers, hot-subject skew, malformed/oversized probes and
// slow-loris connections — against an in-process server squeezed down to a
// tiny backpressure window, and holds the report to the overload contract:
// shed and rejected traffic lands in its own buckets, real Errors stay at
// zero, and the server keeps accepting work throughout (the shed-rate sanity
// bound: shedding is partial, never a full outage). This is the CI
// http-overload job's workload; under -race it doubles as a hammer over the
// whole ingress stack.
func TestLoadgenAdversarial(t *testing.T) {
	var out bytes.Buffer
	err := runLoadgen(runConfig{
		n: 60, m: 2, graphSeed: 7, seed: 1, epsilon: 1e-5,
		epoch: 10 * time.Millisecond, workers: 1,
		duration: 500 * time.Millisecond, writers: 4, readers: 2,
		batchSize: 4, rate: 5000, adversarial: true,
		maxPending: 32, maxInflight: 64,
		readTimeout: 2 * time.Second, writeTimeout: 2 * time.Second,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := decodeLoadgenReport(t, out.String())
	if report.Errors != 0 {
		t.Fatalf("adversarial run saw %d real errors: %+v", report.Errors, report)
	}
	if report.AcceptedRatings == 0 || report.IngestOps == 0 {
		t.Fatalf("server accepted nothing under adversarial load: %+v", report)
	}
	if report.QueryOps == 0 {
		t.Fatalf("readers did no work: %+v", report)
	}
	// The tiny pending window must have shed load — and the shed rate must be
	// partial: a server that refuses every write is an outage, not
	// backpressure.
	if report.Shed429 == 0 {
		t.Fatalf("32-entry pending window shed nothing under a 5k/s flood: %+v", report)
	}
	attempts := report.IngestOps + report.Shed429 + report.Shed503
	if report.Shed429+report.Shed503 >= attempts {
		t.Fatalf("every write attempt was shed (%d of %d): %+v", report.Shed429+report.Shed503, attempts, report)
	}
	// The probe mix fires at 1/16 per writer iteration, so hundreds of
	// iterations make both probe kinds a statistical certainty — and each
	// must have been turned away with its documented status, not served.
	if report.Rejected400 == 0 || report.Rejected413 == 0 {
		t.Fatalf("adversarial probes not rejected (400s=%d, 413s=%d): %+v",
			report.Rejected400, report.Rejected413, report)
	}
	if report.SlowLoris == 0 {
		t.Fatalf("no slow-loris connection was ever held: %+v", report)
	}
	if report.FinalEpoch.Epoch == 0 {
		t.Fatalf("no epoch ever ran: %+v", report.FinalEpoch)
	}
}
