package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"diffgossip/internal/service"
	"diffgossip/internal/store"
)

// server wraps a reputation service with the HTTP/JSON API:
//
//	POST /v1/feedback                    {"rater":i,"subject":j,"value":v}
//	GET  /v1/reputation/{subject}        global reputation
//	GET  /v1/reputation/{subject}?as=i   GCLR personalised view for rater i
//	GET  /v1/epoch                       current snapshot metadata
//	POST /v1/epoch                       force an epoch now
//	GET  /healthz                        liveness + last epoch error
//
// Reads are served lock-free from the published snapshot; feedback becomes
// visible at the next epoch (see the internal/service consistency model).
type server struct {
	svc *service.Service
	mux *http.ServeMux
}

func newServer(svc *service.Service) *server {
	s := &server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /v1/reputation/{subject}", s.handleReputation)
	s.mux.HandleFunc("GET /v1/epoch", s.handleEpochGet)
	s.mux.HandleFunc("POST /v1/epoch", s.handleEpochPost)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// feedbackRequest is the POST /v1/feedback body.
type feedbackRequest struct {
	Rater   int     `json:"rater"`
	Subject int     `json:"subject"`
	Value   float64 `json:"value"`
}

// feedbackResponse acknowledges an accepted feedback entry. The entry is
// durable in the ledger but not yet visible to reads — hence 202 Accepted —
// and will be folded once Snapshot.Seq reaches Seq.
type feedbackResponse struct {
	Seq     uint64 `json:"seq"`
	Pending int    `json:"pending"`
	Epoch   uint64 `json:"epoch"`
}

func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad feedback body: %w", err))
		return
	}
	seq, err := s.svc.Submit(req.Rater, req.Subject, req.Value)
	if err != nil {
		// Validation failures are the caller's fault; anything else (WAL
		// I/O) is a server-side failure the client should retry.
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrInvalidFeedback) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, feedbackResponse{
		Seq:     seq,
		Pending: s.svc.Pending(),
		Epoch:   s.svc.Snapshot().Epoch,
	})
}

// reputationResponse answers a reputation query. Epoch and Seq identify the
// snapshot the value came from; Raters is the number of distinct raters
// backing it (0 means "no evidence", not "bad reputation").
type reputationResponse struct {
	Subject    int     `json:"subject"`
	Reputation float64 `json:"reputation"`
	Raters     int     `json:"raters"`
	Epoch      uint64  `json:"epoch"`
	Seq        uint64  `json:"seq"`
	// As and Personal are set on ?as=rater queries: the GCLR view of the
	// subject from that rater's perspective.
	As       *int `json:"as,omitempty"`
	Personal bool `json:"personal,omitempty"`
}

func (s *server) handleReputation(w http.ResponseWriter, r *http.Request) {
	subject, err := strconv.Atoi(r.PathValue("subject"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad subject: %w", err))
		return
	}
	resp := reputationResponse{Subject: subject}
	var snap *store.Snapshot
	if as := r.URL.Query().Get("as"); as != "" {
		rater, err := strconv.Atoi(as)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad as=%q: %w", as, err))
			return
		}
		resp.As, resp.Personal = &rater, true
		resp.Reputation, snap, err = s.svc.PersonalReputation(rater, subject)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
	} else {
		resp.Reputation, snap, err = s.svc.Reputation(subject)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
	}
	resp.Raters = snap.Raters[subject]
	resp.Epoch, resp.Seq = snap.Epoch, snap.Seq
	writeJSON(w, http.StatusOK, resp)
}

// epochResponse is the GET/POST /v1/epoch answer: the published snapshot's
// metadata plus the current ingest backlog.
type epochResponse struct {
	Epoch           uint64 `json:"epoch"`
	Seq             uint64 `json:"seq"`
	Pending         int    `json:"pending"`
	N               int    `json:"n"`
	Steps           int    `json:"steps"`
	Converged       bool   `json:"converged"`
	ElapsedNs       int64  `json:"elapsed_ns"`
	CreatedUnixNano int64  `json:"created_unix_nano"`
	// Ran reports, on POST /v1/epoch responses, whether an epoch actually
	// recomputed (false = nothing pending, snapshot unchanged).
	Ran bool `json:"ran"`
}

func epochInfo(snap *store.Snapshot, pending int) epochResponse {
	return epochResponse{
		Epoch:           snap.Epoch,
		Seq:             snap.Seq,
		Pending:         pending,
		N:               snap.N,
		Steps:           snap.Steps,
		Converged:       snap.Converged,
		ElapsedNs:       snap.ElapsedNs,
		CreatedUnixNano: snap.CreatedUnixNano,
	}
}

func (s *server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, epochInfo(s.svc.Snapshot(), s.svc.Pending()))
}

func (s *server) handleEpochPost(w http.ResponseWriter, r *http.Request) {
	snap, ran, err := s.svc.RunEpoch()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := epochInfo(snap, s.svc.Pending())
	resp.Ran = ran
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":    true,
		"epoch": s.svc.Snapshot().Epoch,
		"n":     s.svc.N(),
	})
}
