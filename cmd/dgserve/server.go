package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/obs"
	"diffgossip/internal/service"
	"diffgossip/internal/store"
)

// server wraps a reputation service with the HTTP/JSON API:
//
//	POST /v1/feedback                    {"rater":i,"subject":j,"value":v}
//	GET  /v1/reputation/{subject}        global reputation
//	GET  /v1/reputation/{subject}?as=i   GCLR personalised view for rater i
//	GET  /v1/epoch                       composite view metadata
//	POST /v1/epoch                       force an epoch now
//	GET  /v1/stats                       shard pipeline statistics
//	GET  /v1/trace                       recent per-epoch fold traces
//	GET  /healthz                        liveness: 200 while the process serves
//	GET  /readyz                         readiness: 503 when degraded (see below)
//	GET  /metrics                        Prometheus text exposition (when instrumented)
//
// Reads are served lock-free from the published per-shard snapshots;
// feedback becomes visible when its subject's shard next folds (see the
// internal/service consistency model). Responses to subject queries carry
// the fold point (epoch, seq) of that subject's own shard.
//
// The two probes split orchestrator concerns: /healthz answers "should this
// process be restarted" (it always says 200 — a serving process is alive),
// while /readyz answers "should a load balancer route here" and degrades to
// 503 — with the reasons in the body — when the epoch pipeline has failed,
// a majority of cluster peers look suspect or dead (this node is probably
// the partitioned one), or the epoch scheduler has stalled with feedback
// pending.
type server struct {
	svc        *service.Service
	node       *cluster.Node // nil outside cluster mode
	epochEvery time.Duration // scheduler interval, 0 = manual epochs
	started    time.Time
	mux        *http.ServeMux
}

func newServer(svc *service.Service) *server { return newClusterServer(svc, nil, 0, nil) }

// newClusterServer builds the HTTP surface over a service and, in cluster
// mode, its replication node — /v1/stats then carries the peer health and
// replication counters alongside the shard pipeline statistics, and /readyz
// watches cluster membership. epochEvery is the epoch scheduler interval
// (0 = manual epochs), which bounds how long pending feedback may sit
// unfolded before /readyz calls the scheduler stalled.
//
// A non-nil reg turns instrumentation on: every route is wrapped in the
// request-count/latency/in-flight middleware, GET /metrics serves reg's
// exposition, and the readiness verdict is mirrored as the dgserve_ready and
// per-reason dgserve_unready_reason gauges so dashboards and load balancers
// read from the same readyReasons source.
func newClusterServer(svc *service.Service, node *cluster.Node, epochEvery time.Duration, reg *obs.Registry) *server {
	s := &server{svc: svc, node: node, epochEvery: epochEvery, started: time.Now(), mux: http.NewServeMux()}
	wrap := func(route string, h http.HandlerFunc) http.HandlerFunc { return h }
	if reg != nil {
		wrap = obs.NewHTTPMetrics(reg, "dgserve_http").Wrap
	}
	s.mux.HandleFunc("POST /v1/feedback", wrap("/v1/feedback", s.handleFeedback))
	s.mux.HandleFunc("GET /v1/reputation/{subject}", wrap("/v1/reputation", s.handleReputation))
	s.mux.HandleFunc("GET /v1/epoch", wrap("/v1/epoch", s.handleEpochGet))
	s.mux.HandleFunc("POST /v1/epoch", wrap("/v1/epoch", s.handleEpochPost))
	s.mux.HandleFunc("GET /v1/stats", wrap("/v1/stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/trace", wrap("/v1/trace", s.handleTrace))
	s.mux.HandleFunc("GET /healthz", wrap("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", wrap("/readyz", s.handleReady))
	if reg != nil {
		s.mux.Handle("GET /metrics", reg.Handler())
		reg.GaugeFunc("dgserve_ready", "",
			"Readiness verdict mirrored from GET /readyz: 1 ready, 0 degraded.", func() float64 {
				if len(s.readyReasons()) == 0 {
					return 1
				}
				return 0
			})
		reg.GaugeMapFunc("dgserve_unready_reason", "reason",
			"Active readiness-failure causes (1 = failing): epoch_pipeline_failed, membership_degraded, scheduler_stalled.",
			func() map[string]float64 {
				out := map[string]float64{
					reasonEpochFailed: 0, reasonMembership: 0, reasonStalled: 0,
				}
				for _, r := range s.readyReasons() {
					out[r.key] = 1
				}
				return out
			})
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// feedbackRequest is the POST /v1/feedback body.
type feedbackRequest struct {
	Rater   int     `json:"rater"`
	Subject int     `json:"subject"`
	Value   float64 `json:"value"`
}

// feedbackResponse acknowledges an accepted feedback entry. The entry is
// durable in the ledger but not yet visible to reads — hence 202 Accepted —
// and will be folded once its subject's shard epoch reaches Seq (watch the
// reputation response's seq field). Shard identifies the subject shard the
// entry dirtied.
type feedbackResponse struct {
	Seq     uint64 `json:"seq"`
	Shard   int    `json:"shard"`
	Pending int    `json:"pending"`
	Epoch   uint64 `json:"epoch"`
}

func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad feedback body: %w", err))
		return
	}
	seq, err := s.svc.Submit(req.Rater, req.Subject, req.Value)
	if err != nil {
		// Validation failures are the caller's fault; anything else (WAL
		// I/O) is a server-side failure the client should retry.
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrInvalidFeedback) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, feedbackResponse{
		Seq:     seq,
		Shard:   store.ShardOf(req.Subject, s.svc.Shards()),
		Pending: s.svc.Pending(),
		Epoch:   s.svc.Epochs(),
	})
}

// reputationResponse answers a reputation query. Epoch and Seq identify the
// fold point of the subject's own shard; Raters is the number of distinct
// raters backing the value (0 means "no evidence", not "bad reputation").
type reputationResponse struct {
	Subject    int     `json:"subject"`
	Reputation float64 `json:"reputation"`
	Raters     int     `json:"raters"`
	Shard      int     `json:"shard"`
	Epoch      uint64  `json:"epoch"`
	Seq        uint64  `json:"seq"`
	// As and Personal are set on ?as=rater queries: the GCLR view of the
	// subject from that rater's perspective.
	As       *int `json:"as,omitempty"`
	Personal bool `json:"personal,omitempty"`
}

func (s *server) handleReputation(w http.ResponseWriter, r *http.Request) {
	subject, err := strconv.Atoi(r.PathValue("subject"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad subject: %w", err))
		return
	}
	resp := reputationResponse{Subject: subject}
	if as := r.URL.Query().Get("as"); as != "" {
		rater, err := strconv.Atoi(as)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad as=%q: %w", as, err))
			return
		}
		resp.As, resp.Personal = &rater, true
		var view *service.View
		resp.Reputation, view, err = s.svc.PersonalReputation(rater, subject)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		resp.Raters = view.Raters(subject)
		resp.Shard = store.ShardOf(subject, view.Shards())
		resp.Epoch, resp.Seq = view.SubjectEpoch(subject), view.SubjectSeq(subject)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Global read: everything comes from the subject's own shard snapshot,
	// so one atomic load suffices — no composite view on the hot path.
	seg, err := s.svc.SubjectRead(subject)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp.Reputation, err = seg.Reputation(subject)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp.Raters = seg.RaterCount(subject)
	resp.Shard = seg.Shard
	resp.Epoch, resp.Seq = seg.Epoch, seg.Seq
	writeJSON(w, http.StatusOK, resp)
}

// epochResponse is the GET/POST /v1/epoch answer: the composite view's
// metadata plus the current ingest backlog. Epoch/Seq are the newest fold
// point any shard has published; Steps/ElapsedNs aggregate the newest
// epoch's folds; PerShard carries each shard's own fold point and timings.
type epochResponse struct {
	Epoch       uint64              `json:"epoch"`
	Seq         uint64              `json:"seq"`
	Pending     int                 `json:"pending"`
	N           int                 `json:"n"`
	Shards      int                 `json:"shards"`
	DirtyShards int                 `json:"dirty_shards"`
	Steps       int                 `json:"steps"`
	Converged   bool                `json:"converged"`
	ElapsedNs   int64               `json:"elapsed_ns"`
	PerShard    []service.ShardStat `json:"per_shard"`
	// Ran reports, on POST /v1/epoch responses, whether an epoch actually
	// recomputed (false = nothing pending, shard snapshots unchanged).
	Ran bool `json:"ran"`
}

func (s *server) epochInfo(view *service.View) epochResponse {
	st := s.svc.Stats()
	return epochResponse{
		Epoch:       view.Epoch(),
		Seq:         view.Seq(),
		Pending:     st.Pending,
		N:           view.N(),
		Shards:      view.Shards(),
		DirtyShards: st.DirtyShards,
		Steps:       view.Steps(),
		Converged:   view.Converged(),
		ElapsedNs:   view.ElapsedNs(),
		PerShard:    st.PerShard,
	}
}

func (s *server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.epochInfo(s.svc.View()))
}

func (s *server) handleEpochPost(w http.ResponseWriter, r *http.Request) {
	view, ran, err := s.svc.RunEpoch()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := s.epochInfo(view)
	resp.Ran = ran
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /v1/stats body: the shard pipeline statistics plus,
// in cluster mode, the replication layer's watermarks, counters and per-peer
// health.
type statsResponse struct {
	service.Stats
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// handleStats serves the shard pipeline statistics (and cluster peer health
// when federated). The service half of the path is lock-free — atomic
// counter loads and per-shard pointer loads — so it can be scraped
// aggressively without perturbing ingest or epochs.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Stats: s.svc.Stats()}
	if s.node != nil {
		st := s.node.Stats()
		resp.Cluster = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth is the liveness probe: a process that can answer it should
// not be restarted, so it always reports 200. Degradation — epoch errors,
// failing peers, a stalled scheduler — is readiness, on /readyz.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"epoch":  s.svc.Epochs(),
		"n":      s.svc.N(),
		"shards": s.svc.Shards(),
	})
}

// stallGrace is how many scheduler intervals pending feedback may wait
// before /readyz declares the epoch scheduler stalled. Three intervals
// absorbs one slow fold without flapping.
const stallGrace = 3

// The stable reason keys readiness failures are exported under — both as the
// dgserve_unready_reason gauge's label values and for tests matching probe
// output to metrics.
const (
	reasonEpochFailed = "epoch_pipeline_failed"
	reasonMembership  = "membership_degraded"
	reasonStalled     = "scheduler_stalled"
)

// readyReason is one cause of readiness failure: a stable key for metrics
// and a human explanation for the probe body.
type readyReason struct{ key, msg string }

// readyReasons computes the readiness verdict — the single source both
// GET /readyz and the dgserve_ready/dgserve_unready_reason gauges report
// from. Empty means ready.
func (s *server) readyReasons() []readyReason {
	var reasons []readyReason
	if err := s.svc.Err(); err != nil {
		reasons = append(reasons, readyReason{reasonEpochFailed, fmt.Sprintf("epoch pipeline failed: %v", err)})
	}
	if s.node != nil {
		if degraded, why := s.node.Degraded(); degraded {
			reasons = append(reasons, readyReason{reasonMembership, "cluster membership degraded: " + why})
		}
	}
	if s.epochEvery > 0 && s.svc.Pending() > 0 {
		// Pending feedback with a running scheduler should fold within an
		// interval; measure from the later of the last epoch and process
		// start so a fresh server is not instantly stalled.
		ref := s.started.UnixNano()
		if last := s.svc.LastEpochUnixNano(); last > ref {
			ref = last
		}
		if wait := time.Since(time.Unix(0, ref)); wait > stallGrace*s.epochEvery {
			reasons = append(reasons, readyReason{reasonStalled,
				fmt.Sprintf("epoch scheduler stalled: %d entries pending for %v (interval %v)",
					s.svc.Pending(), wait.Round(time.Millisecond), s.epochEvery)})
		}
	}
	return reasons
}

// handleReady is the readiness probe: 200 while this node should receive
// traffic, 503 with the reasons otherwise. A degraded node keeps serving —
// clients that reach it directly still get answers — the probe only steers
// load balancers away.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if rs := s.readyReasons(); len(rs) > 0 {
		msgs := make([]string, len(rs))
		for i, rr := range rs {
			msgs[i] = rr.msg
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": msgs})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// traceResponse is the GET /v1/trace body: the scheduler's ring of recent
// non-empty epochs, oldest first, plus the ring's capacity.
type traceResponse struct {
	Depth  int                  `json:"depth"`
	Epochs []service.EpochTrace `json:"epochs"`
}

// handleTrace serves the epoch trace ring — the postmortem view of the last
// TraceDepth folds: which shards recomputed, when each fold started and how
// long its campaigns ran, and whether anti-entropy preceded the epoch.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, traceResponse{Depth: s.svc.TraceDepth(), Epochs: s.svc.Trace()})
}
