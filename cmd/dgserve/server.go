package main

import (
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/obs"
	"diffgossip/internal/service"
)

// The HTTP surface lives in internal/httpapi (so the bench harness drives
// the same ingress path production serves); these aliases keep this
// package's tests and the loadgen reading naturally.
type (
	feedbackResponse   = httpapi.FeedbackResponse
	batchResponse      = httpapi.BatchResponse
	reputationResponse = httpapi.ReputationResponse
	epochResponse      = httpapi.EpochResponse
	statsResponse      = httpapi.StatsResponse
	traceResponse      = httpapi.TraceResponse
)

// newServer builds a standalone front door with default limits — the
// in-process loadgen target and simple-test construction.
func newServer(svc *service.Service) *httpapi.Server { return newClusterServer(svc, nil, 0, nil) }

// newClusterServer builds the HTTP surface over a service and, in cluster
// mode, its replication node, with the package's default ingress limits.
// run() wires the flag-configured limits through runConfig.newHTTPServer
// instead.
func newClusterServer(svc *service.Service, node *cluster.Node, epochEvery time.Duration, reg *obs.Registry) *httpapi.Server {
	return httpapi.New(httpapi.Config{
		Service: svc, Node: node, EpochEvery: epochEvery, Registry: reg,
	})
}
