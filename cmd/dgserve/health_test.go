package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

// readyBody decodes one /readyz response.
type readyBody struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons"`
}

// TestReadyzStandalone: a healthy standalone server is ready, and /healthz
// stays a pure liveness probe alongside it.
func TestReadyzStandalone(t *testing.T) {
	ts, _ := newTestServer(t, 16, 0)
	var rb readyBody
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != 200 || !rb.Ready {
		t.Fatalf("/readyz = %d %+v, want 200 ready", r.StatusCode, rb)
	}
	var hb map[string]any
	if r := getJSON(t, ts.URL+"/healthz", &hb); r.StatusCode != 200 || hb["ok"] != true {
		t.Fatalf("/healthz = %d %+v, want 200 ok", r.StatusCode, hb)
	}
}

// TestReadyzDegradedMembership: a cluster member whose only peer is dead
// fails readiness — and still answers /healthz 200, because a partitioned
// process is alive, just not routable.
func TestReadyzDegradedMembership(t *testing.T) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 16, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	svc, err := service.New(service.Config{
		Graph:  g,
		Params: core.Params{Epsilon: 1e-6, Seed: 3},
		// Replicate + fixed seed as in real cluster mode.
		Replicate: true, FixedEpochSeed: true,
		Origin: tr.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// The sole seed points at a port nobody listens on; with millisecond
	// thresholds it is dead almost immediately.
	node, err := cluster.New(cluster.Config{
		Service: svc, Transport: tr, Peers: []string{"127.0.0.1:1"},
		SuspectAfter: time.Millisecond, DeadAfter: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ts := httptest.NewServer(newClusterServer(svc, node, 0, nil))
	defer ts.Close()
	time.Sleep(5 * time.Millisecond) // let the thresholds pass

	var rb readyBody
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != http.StatusServiceUnavailable || rb.Ready {
		t.Fatalf("/readyz = %d %+v, want 503 not-ready", r.StatusCode, rb)
	}
	if len(rb.Reasons) == 0 {
		t.Fatal("degraded /readyz carries no reasons")
	}
	var hb map[string]any
	if r := getJSON(t, ts.URL+"/healthz", &hb); r.StatusCode != 200 {
		t.Fatalf("/healthz = %d while degraded, want 200 (liveness is not readiness)", r.StatusCode)
	}
}

// TestReadyzStalledScheduler: pending feedback past the stall grace with a
// scheduled epoch interval fails readiness.
func TestReadyzStalledScheduler(t *testing.T) {
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 16, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// EpochInterval stays 0 (no real scheduler runs) but the server is told
	// one exists with a tiny interval: pending feedback then looks stalled
	// as soon as the grace passes.
	svc, err := service.New(service.Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httpapi.New(httpapi.Config{
		Service: svc, EpochEvery: time.Millisecond,
		Started: time.Now().Add(-time.Second), // the grace has long passed
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var rb readyBody
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != 200 {
		t.Fatalf("/readyz with empty backlog = %d %+v, want 200", r.StatusCode, rb)
	}
	if _, err := svc.Submit(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with stalled backlog = %d %+v, want 503", r.StatusCode, rb)
	}
	// An epoch clears the backlog and readiness recovers.
	if _, _, err := svc.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if r := getJSON(t, ts.URL+"/readyz", &rb); r.StatusCode != 200 || !rb.Ready {
		t.Fatalf("/readyz after fold = %d %+v, want 200 ready", r.StatusCode, rb)
	}
}

// TestGracefulShutdownOnSIGTERM boots a full cluster-mode dgserve via run(),
// exercises the write path, sends the process SIGTERM, and requires a clean
// exit — with the WAL and hint log durable on disk afterwards.
func TestGracefulShutdownOnSIGTERM(t *testing.T) {
	dir := t.TempDir()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(runConfig{
			listen: "127.0.0.1:0", n: 16, m: 2, graphSeed: 42, seed: 1,
			epsilon: 1e-6, epoch: 0, workers: 1, shards: 1, foldWorkers: 1,
			dataDir: dir, clusterListen: "127.0.0.1:0", antiEntropy: time.Hour,
			ready: func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, body := postJSON(t, "http://"+addr+"/v1/feedback", `{"rater":3,"subject":7,"value":0.9}`)
	if resp.StatusCode != 202 {
		t.Fatalf("feedback status %d: %s", resp.StatusCode, body)
	}
	var rb readyBody
	if r := getJSON(t, "http://"+addr+"/readyz", &rb); r.StatusCode != 200 {
		t.Fatalf("/readyz = %d %+v", r.StatusCode, rb)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down after SIGTERM")
	}

	// The accepted entry must have survived: the WAL was synced on the way
	// out, and a fresh service over the same directory replays it.
	svc, err := runConfig{
		n: 16, m: 2, graphSeed: 42, seed: 1, epsilon: 1e-6,
		workers: 1, shards: 1, foldWorkers: 1, dataDir: dir,
		clusterListen: "x", // any non-empty value selects the replicating config
	}.newService("node-x")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.ReplicationMark(""); got != 1 {
		t.Fatalf("replayed local watermark = %d, want the accepted entry", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "hints.jsonl")); err != nil {
		t.Fatalf("hint log missing after shutdown: %v", err)
	}
}

// TestHealthzBody pins the liveness payload fields used by probes.
func TestHealthzBody(t *testing.T) {
	ts, svc := newTestServer(t, 16, 0)
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var hb struct {
		OK     bool `json:"ok"`
		N      int  `json:"n"`
		Shards int  `json:"shards"`
	}
	if err := json.NewDecoder(res.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if !hb.OK || hb.N != svc.N() || hb.Shards != svc.Shards() {
		t.Fatalf("healthz body %+v, want n=%d shards=%d", hb, svc.N(), svc.Shards())
	}
}
