package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/httpapi"
	"diffgossip/internal/obs"
	"diffgossip/internal/service"
)

// newOverloadServer builds an httpapi server with explicit limits over a
// fresh service and registry, without binding a listener — the overload
// contract is exercised through ServeHTTP directly so request lifetimes
// (stalled bodies, pre-canceled contexts) stay under test control.
func newOverloadServer(t *testing.T, mutate func(*httpapi.Config)) (*httpapi.Server, *service.Service) {
	t.Helper()
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: 16, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Graph: g, Params: core.Params{Epsilon: 1e-6, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	cfg := httpapi.Config{Service: svc, EpochEvery: 2 * time.Second, Registry: reg}
	if mutate != nil {
		mutate(&cfg)
	}
	return httpapi.New(cfg), svc
}

// refusedCounts scrapes the server's own /metrics and returns the full
// dgserve_http_refused_total family keyed by reason label.
func refusedCounts(t *testing.T, srv *httpapi.Server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	fams, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	counts := make(map[string]float64)
	for _, f := range fams {
		if f.Name != "dgserve_http_refused_total" {
			continue
		}
		for _, s := range f.Samples {
			reason := strings.TrimSuffix(strings.TrimPrefix(s.Labels, `reason="`), `"`)
			counts[reason] = s.Value
		}
	}
	if len(counts) != 5 {
		t.Fatalf("refused family has %d reasons, want 5: %v", len(counts), counts)
	}
	return counts
}

// wantRefused asserts the named reason's counter is exactly 1 and every
// other refusal reason stayed at 0 — each refusal is counted once, under
// one reason.
func wantRefused(t *testing.T, srv *httpapi.Server, reason string) {
	t.Helper()
	for r, v := range refusedCounts(t, srv) {
		want := 0.0
		if r == reason {
			want = 1.0
		}
		if v != want {
			t.Errorf("refused{reason=%q} = %v, want %v", r, v, want)
		}
	}
}

func doReq(srv *httpapi.Server, method, target, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	srv.ServeHTTP(rec, httptest.NewRequest(method, target, rd))
	return rec
}

// TestOverloadContract pins the front door's refusal table: every overload
// and abuse case answers its documented status, and increments its
// dgserve_http_refused_total reason exactly once.
func TestOverloadContract(t *testing.T) {
	t.Run("oversized single body -> 413", func(t *testing.T) {
		srv, _ := newOverloadServer(t, nil)
		// Leading whitespace pushes the body past the single-feedback byte
		// limit before the decoder reaches the value.
		body := strings.Repeat(" ", 8192) + `{"rater":1,"subject":2,"value":0.5}`
		if rec := doReq(srv, http.MethodPost, "/v1/feedback", body); rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", rec.Code)
		}
		wantRefused(t, srv, "oversized")
	})

	t.Run("batch over entry limit -> 413", func(t *testing.T) {
		srv, _ := newOverloadServer(t, func(c *httpapi.Config) { c.MaxBatch = 2 })
		body := `[{"rater":1,"subject":2,"value":0.5},{"rater":2,"subject":3,"value":0.5},{"rater":3,"subject":4,"value":0.5}]`
		if rec := doReq(srv, http.MethodPost, "/v1/feedback/batch", body); rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", rec.Code)
		}
		wantRefused(t, srv, "oversized")
	})

	t.Run("malformed body -> 400", func(t *testing.T) {
		srv, _ := newOverloadServer(t, nil)
		if rec := doReq(srv, http.MethodPost, "/v1/feedback", `{"rater":`); rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rec.Code)
		}
		wantRefused(t, srv, "malformed")
	})

	t.Run("invalid rating in batch -> 400, all-or-nothing", func(t *testing.T) {
		srv, svc := newOverloadServer(t, nil)
		// Entry 2 of 2 is out of range: the whole batch must be rejected.
		body := `[{"rater":1,"subject":2,"value":0.5},{"rater":2,"subject":3,"value":7.0}]`
		if rec := doReq(srv, http.MethodPost, "/v1/feedback/batch", body); rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rec.Code)
		}
		if got := svc.Pending(); got != 0 {
			t.Fatalf("%d entries admitted from a rejected batch, want 0", got)
		}
		wantRefused(t, srv, "malformed")
	})

	t.Run("pending window full -> 429 with Retry-After", func(t *testing.T) {
		srv, svc := newOverloadServer(t, func(c *httpapi.Config) { c.MaxPending = 1 })
		if _, err := svc.Submit(1, 2, 0.5); err != nil {
			t.Fatal(err)
		}
		rec := doReq(srv, http.MethodPost, "/v1/feedback", `{"rater":3,"subject":4,"value":0.5}`)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", rec.Code)
		}
		// Retry-After is the epoch cadence rounded up (2s configured here).
		if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra != 2 {
			t.Fatalf("Retry-After = %q, want 2", rec.Header().Get("Retry-After"))
		}
		wantRefused(t, srv, "backpressure")

		// Backpressure is also a readiness reason, so load balancers rotate
		// writes away before clients ever see the 429s.
		var rb readyBody
		rr := doReq(srv, http.MethodGet, "/readyz", "")
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("/readyz status %d under backpressure, want 503", rr.Code)
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &rb); err != nil || rb.Ready {
			t.Fatalf("/readyz body %s", rr.Body.String())
		}

		// An epoch drains the window and ingest reopens.
		if _, _, err := svc.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if rec := doReq(srv, http.MethodPost, "/v1/feedback", `{"rater":3,"subject":4,"value":0.5}`); rec.Code != http.StatusAccepted {
			t.Fatalf("post-fold status %d, want 202", rec.Code)
		}
	})

	t.Run("inflight gate full -> 503", func(t *testing.T) {
		srv, _ := newOverloadServer(t, func(c *httpapi.Config) { c.MaxInflight = 1 })
		// The first request holds the only slot: its body arrives through a
		// pipe, so the handler is provably past the gate once a write is
		// consumed, and stays in the handler until the body completes.
		pr, pw := io.Pipe()
		first := httptest.NewRequest(http.MethodPost, "/v1/feedback", pr)
		firstRec := httptest.NewRecorder()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeHTTP(firstRec, first)
		}()
		if _, err := pw.Write([]byte(" ")); err != nil { // returns only after the decoder reads
			t.Fatal(err)
		}
		rec := doReq(srv, http.MethodGet, "/v1/stats", "")
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", rec.Code)
		}
		if rec.Header().Get("Retry-After") != "1" {
			t.Fatalf("Retry-After = %q, want 1", rec.Header().Get("Retry-After"))
		}
		// Release the slot with a valid body: the held request itself is
		// accepted, so the only refusal on the books is the gate's.
		if _, err := pw.Write([]byte(`{"rater":1,"subject":2,"value":0.5}`)); err != nil {
			t.Fatal(err)
		}
		pw.Close()
		wg.Wait()
		if firstRec.Code != http.StatusAccepted {
			t.Fatalf("held request status %d, want 202", firstRec.Code)
		}
		wantRefused(t, srv, "inflight")
		if rec := doReq(srv, http.MethodGet, "/v1/stats", ""); rec.Code != http.StatusOK {
			t.Fatalf("post-release status %d, want 200", rec.Code)
		}
	})

	t.Run("canceled context -> 499, no WAL write", func(t *testing.T) {
		srv, svc := newOverloadServer(t, nil)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, c := range []struct{ target, body string }{
			{"/v1/feedback", `{"rater":1,"subject":2,"value":0.5}`},
			{"/v1/feedback/batch", `[{"rater":1,"subject":2,"value":0.5}]`},
		} {
			req := httptest.NewRequest(http.MethodPost, c.target, strings.NewReader(c.body)).WithContext(ctx)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != httpapi.StatusClientClosedRequest {
				t.Fatalf("%s status %d, want 499", c.target, rec.Code)
			}
		}
		// Nothing was recorded: the context is checked before the ledger is
		// touched, so an abandoned request leaves no partial write behind.
		if got := svc.Pending(); got != 0 {
			t.Fatalf("%d entries admitted from canceled requests, want 0", got)
		}
		if counts := refusedCounts(t, srv); counts["canceled"] != 2 {
			t.Fatalf("refused{canceled} = %v after two canceled posts, want 2", counts["canceled"])
		}
	})
}
