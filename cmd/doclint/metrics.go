package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"diffgossip/internal/obs"
)

// metricMethods are the obs.Registry registration methods whose call sites
// the metrics lint inspects. All of them take (name, labels-or-labelKey,
// help, collector), so the name is argument 0 and the help argument 2.
var metricMethods = map[string]bool{
	"Counter": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true, "GaugeMapFunc": true,
	"Histogram": true,
}

// metricNameRe is the repository's metric naming contract: every metric is
// namespaced under dgserve_ (the server layer) or diffgossip_ (the library
// layers), lowercase with underscores.
var metricNameRe = regexp.MustCompile(`^(dgserve|diffgossip)_[a-z][a-z0-9_]*$`)

// lintMetricRegistrations walks every non-test Go file under root and checks
// the obs registration call sites whose metric name is a string literal:
// the name must match the dgserve_/diffgossip_ naming contract, the help
// string must be a non-empty literal, and no (name, labels) pair may be
// registered twice. Call sites with computed names (the HTTP middleware's
// per-prefix metrics) are covered by the -scrape mode instead, which applies
// the same contract to a live exposition.
func lintMetricRegistrations(root string) ([]string, error) {
	var problems []string
	seen := map[string]string{} // (name, labels) → first registration site
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricMethods[sel.Sel.Name] || len(call.Args) < 3 {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true // computed name; the -scrape mode covers it
			}
			pos := fset.Position(call.Args[0].Pos())
			rel, rerr := filepath.Rel(root, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			at := fmt.Sprintf("%s:%d", rel, pos.Line)
			if !metricNameRe.MatchString(name) {
				problems = append(problems, fmt.Sprintf(
					"%s: metric %q violates the naming contract (want %s)", at, name, metricNameRe))
			}
			if help, ok := stringLit(call.Args[2]); ok && strings.TrimSpace(help) == "" {
				problems = append(problems, fmt.Sprintf("%s: metric %q has empty help text", at, name))
			}
			labels := "?"
			if l, ok := stringLit(call.Args[1]); ok {
				labels = l
			}
			key := name + "{" + labels + "}"
			if first, dup := seen[key]; dup {
				problems = append(problems, fmt.Sprintf(
					"%s: metric %s already registered at %s", at, key, first))
			} else {
				seen[key] = at
			}
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return problems, nil
}

// stringLit unwraps an expression to its string-literal value, following
// constant concatenations of literals.
func stringLit(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, lok := stringLit(v.X)
		r, rok := stringLit(v.Y)
		return l + r, lok && rok
	default:
		return "", false
	}
}

// LintScrape lints a live Prometheus exposition (a saved GET /metrics body):
// it must parse — well-ordered HELP/TYPE headers, monotone histograms — and
// every family must carry non-empty help and obey the naming contract.
// Unlike the source-level lint this also covers metrics registered under
// computed names. CI boots dgserve, scrapes it, and runs this over the
// result.
func LintScrape(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fams, err := obs.ParseExposition(data)
	if err != nil {
		return []string{fmt.Sprintf("%s: exposition does not parse: %v", path, err)}, nil
	}
	var problems []string
	for _, f := range fams {
		if !metricNameRe.MatchString(f.Name) {
			problems = append(problems, fmt.Sprintf(
				"%s: metric %q violates the naming contract (want %s)", path, f.Name, metricNameRe))
		}
		if strings.TrimSpace(f.Help) == "" {
			problems = append(problems, fmt.Sprintf("%s: metric %q has empty help text", path, f.Name))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
