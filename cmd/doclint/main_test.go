package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// TestRepositoryIsLintClean runs the full doc lint against this repository:
// the same gate CI applies, enforced under plain `go test`.
func TestRepositoryIsLintClean(t *testing.T) {
	problems, err := Lint(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestLintCatchesMissingDocAndBrokenLink proves the two checks actually
// fire, using a synthetic mini-repo.
func TestLintCatchesMissingDocAndBrokenLink(t *testing.T) {
	dir := t.TempDir()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(os.MkdirAll(filepath.Join(dir, "internal/store"), 0o755))
	must(os.MkdirAll(filepath.Join(dir, "docs"), 0o755))
	must(os.WriteFile(filepath.Join(dir, "root.go"), []byte(`// Package x.
package x

func Undocumented() {}

// Documented is fine.
func Documented() {}

type AlsoUndocumented struct{}

func (AlsoUndocumented) Method() {}

type hidden struct{}

func (hidden) Exported() {} // method on unexported type: not reported
`), 0o644))
	must(os.WriteFile(filepath.Join(dir, "README.md"), []byte("[ok](docs/GOOD.md) [bad](docs/MISSING.md) [ext](https://x.test/a.md)\n"), 0o644))
	must(os.WriteFile(filepath.Join(dir, "docs/GOOD.md"), []byte("hi [up](../README.md)\n"), 0o644))
	must(os.WriteFile(filepath.Join(dir, "internal/store/s.go"), []byte("package store\n\nvar Loose = 1\n"), 0o644))

	problems, err := Lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range problems {
		switch {
		case strings.Contains(p, "Undocumented") && !strings.Contains(p, "Also"):
			got = append(got, "func")
		case strings.Contains(p, "AlsoUndocumented lacks"):
			got = append(got, "type")
		case strings.Contains(p, "AlsoUndocumented.Method"):
			got = append(got, "method")
		case strings.Contains(p, "Loose"):
			got = append(got, "var")
		case strings.Contains(p, "MISSING.md"):
			got = append(got, "link")
		case strings.Contains(p, "Documented") || strings.Contains(p, "hidden") || strings.Contains(p, "GOOD"):
			t.Errorf("false positive: %s", p)
		default:
			t.Errorf("unexpected problem: %s", p)
		}
	}
	want := map[string]bool{"func": true, "type": true, "method": true, "var": true, "link": true}
	for _, g := range got {
		delete(want, g)
	}
	for missing := range want {
		t.Errorf("lint never reported the %s violation; problems: %v", missing, problems)
	}
}
