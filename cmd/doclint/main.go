// Command doclint enforces the repository's documentation contract in CI:
//
//   - every exported symbol in the public diffgossip package and in
//     internal/service, internal/store and internal/cluster carries a doc
//     comment (these are the packages whose contracts — consistency,
//     durability, replication — live in their comments);
//   - every relative markdown link in README.md, PAPER.md, CHANGES.md,
//     ROADMAP.md and docs/*.md points at a file that exists;
//   - every metric registered with a literal name carries non-empty help
//     text, obeys the dgserve_/diffgossip_ naming contract and is registered
//     exactly once (the metrics lint).
//
// Run from the repository root (or pass -root); exits non-zero listing every
// violation. With -scrape FILE the source checks are skipped and FILE — a
// saved GET /metrics body — is linted instead: it must parse as Prometheus
// text exposition and every family must obey the same naming and help
// contract, covering metrics whose names are computed at runtime. The
// cmd/doclint tests run the same checks under plain `go test`, so drift
// fails tier-1 locally before CI sees it.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// lintPackages are the directories (relative to the repo root) whose
// exported symbols must all be documented.
var lintPackages = []string{".", "internal/service", "internal/store", "internal/cluster", "internal/obs", "internal/httpapi"}

// lintMarkdown are the markdown files (and globs) whose relative links must
// resolve.
var lintMarkdown = []string{"README.md", "PAPER.md", "CHANGES.md", "ROADMAP.md", "docs/*.md"}

func main() {
	root := flag.String("root", ".", "repository root to lint")
	scrape := flag.String("scrape", "", "lint a saved GET /metrics body instead of the source tree")
	flag.Parse()
	var problems []string
	var err error
	if *scrape != "" {
		problems, err = LintScrape(*scrape)
	} else {
		problems, err = Lint(*root)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// Lint runs every check rooted at root and returns the sorted problem list.
func Lint(root string) ([]string, error) {
	var problems []string
	for _, dir := range lintPackages {
		ps, err := lintPackageDocs(root, dir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	ps, err := lintMarkdownLinks(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, ps...)
	ps, err = lintMetricRegistrations(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, ps...)
	sort.Strings(problems)
	return problems, nil
}

// lintPackageDocs parses one directory (non-test files only) and reports
// every exported top-level symbol — functions, methods on exported types,
// types, and const/var specs — that lacks a doc comment. A documented
// const/var group covers its members.
func lintPackageDocs(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if os.IsNotExist(err) {
		return nil, nil // a lint target that does not exist yet has no symbols
	}
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, symbol string) {
		p := fset.Position(pos)
		rel, err := filepath.Rel(root, p.Filename)
		if err != nil {
			rel = p.Filename
		}
		problems = append(problems, fmt.Sprintf("%s:%d: exported symbol %s lacks a doc comment", rel, p.Line, symbol))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					name := d.Name.Name
					if d.Recv != nil && len(d.Recv.List) == 1 {
						recv := receiverName(d.Recv.List[0].Type)
						if recv != "" && !ast.IsExported(recv) {
							continue // method on an unexported type
						}
						name = recv + "." + name
					}
					report(d.Pos(), name)
				case *ast.GenDecl:
					switch d.Tok {
					case token.TYPE:
						for _, spec := range d.Specs {
							ts := spec.(*ast.TypeSpec)
							if !ts.Name.IsExported() {
								continue
							}
							// A doc on the decl covers a single-spec block.
							if ts.Doc == nil && !(d.Doc != nil && len(d.Specs) == 1) {
								report(ts.Pos(), ts.Name.Name)
							}
						}
					case token.CONST, token.VAR:
						for _, spec := range d.Specs {
							vs := spec.(*ast.ValueSpec)
							for _, nm := range vs.Names {
								if !nm.IsExported() {
									continue
								}
								// Either the spec documents itself (doc or
								// line comment) or the group is documented.
								if vs.Doc == nil && vs.Comment == nil && d.Doc == nil {
									report(nm.Pos(), nm.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}

// receiverName unwraps a method receiver type expression to its base
// identifier ("*Foo" and generic instantiations included).
func receiverName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// mdLink matches inline markdown links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdownLinks checks that every relative link target in the documented
// markdown set exists on disk. External schemes and pure anchors are
// skipped; a target's own #fragment is stripped before the stat.
func lintMarkdownLinks(root string) ([]string, error) {
	var files []string
	for _, pat := range lintMarkdown {
		matches, err := filepath.Glob(filepath.Join(root, pat))
		if err != nil {
			return nil, err
		}
		files = append(files, matches...)
	}
	var problems []string
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, f)
		if err != nil {
			rel = f
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if j := strings.IndexByte(target, '#'); j >= 0 {
					target = target[:j]
				}
				if target == "" {
					continue
				}
				if _, err := os.Stat(filepath.Join(filepath.Dir(f), target)); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", rel, i+1, m[1]))
				}
			}
		}
	}
	return problems, nil
}
