package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays files out under a temp root and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, body := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestMetricsLintCatchesViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.go": `package a

func register(reg registry) {
	reg.Counter("diffgossip_good_total", "", "A fine counter.", nil)
	reg.Counter("badprefix_total", "", "Wrong namespace.", nil)
	reg.Gauge("diffgossip_helpless", "", "", nil)
	reg.Histogram("diffgossip_good_total", "", "Duplicate of the counter.", nil)
	reg.CounterFunc("diffgossip_"+"concat_total", "", "Literal concat still checked.", nil)
}
`,
	})
	problems, err := lintMetricRegistrations(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		`"badprefix_total" violates the naming contract`,
		`"diffgossip_helpless" has empty help text`,
		`diffgossip_good_total{} already registered`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
	if len(problems) != 3 {
		t.Errorf("problems = %d, want 3:\n%s", len(problems), joined)
	}
}

func TestMetricsLintIgnoresComputedNamesAndTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.go": `package a

func register(reg registry, prefix string) {
	reg.Counter(prefix+"_requests_total", "", "Computed name: -scrape covers it.", nil)
}
`,
		"a_test.go": `package a

func testRegister(reg registry) {
	reg.Counter("not_even_close", "", "", nil)
}
`,
	})
	problems, err := lintMetricRegistrations(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("problems = %v, want none", problems)
	}
}

func TestLintScrape(t *testing.T) {
	good := filepath.Join(t.TempDir(), "good.prom")
	if err := os.WriteFile(good, []byte(
		"# HELP diffgossip_widgets_total Widgets made.\n"+
			"# TYPE diffgossip_widgets_total counter\n"+
			"diffgossip_widgets_total 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := LintScrape(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("good scrape: problems = %v", problems)
	}

	bad := filepath.Join(t.TempDir(), "bad.prom")
	if err := os.WriteFile(bad, []byte(
		"# HELP widgets_total \n"+
			"# TYPE widgets_total counter\n"+
			"widgets_total 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = LintScrape(bad)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "naming contract") || !strings.Contains(joined, "empty help") {
		t.Fatalf("bad scrape: problems = %v", problems)
	}

	garbled := filepath.Join(t.TempDir(), "garbled.prom")
	if err := os.WriteFile(garbled, []byte("diffgossip_no_header 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = LintScrape(garbled)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "does not parse") {
		t.Fatalf("garbled scrape: problems = %v", problems)
	}
}
