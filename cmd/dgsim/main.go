// Command dgsim regenerates every table and figure of the paper's evaluation
// (§5.3). Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	dgsim -exp table1                          # §4.2 worked example
//	dgsim -exp table2                          # messages per node per step
//	dgsim -exp fig3 -quick                     # steps vs N (quick sizes)
//	dgsim -exp fig4 -n 10000                   # steps vs ξ under loss
//	dgsim -exp fig5 -n 500                     # group collusion RMS error
//	dgsim -exp fig6 -n 500                     # individual collusion
//	dgsim -exp scaling                         # Theorem 5.1/5.2 check
//	dgsim -exp factor                          # eq. (17) damping check
//	dgsim -exp all -quick                      # everything, small sizes
//	dgsim -bench-json BENCH_1.json             # perf-trajectory benchmark
//
// Flags -csv, -seed, -n and -quick adjust output format, determinism and
// scale. -bench-json runs the scalar and vector engines on Fig3/Table2-class
// workloads and writes ns/step, msgs/node/step, steps and allocs/step as
// JSON to the given path instead of running experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"diffgossip/internal/sim"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table2|fig3|fig4|fig5|fig6|scaling|factor|whitewash|baselines|profile|churn|all")
		seed      = flag.Uint64("seed", 42, "random seed (all experiments are deterministic given the seed)")
		n         = flag.Int("n", 0, "override network size where applicable (fig4/fig5/fig6/factor/churn/scenario/bench)")
		quick     = flag.Bool("quick", false, "use reduced sweeps (N up to 1000) for fast runs")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		benchJSON = flag.String("bench-json", "", "run the perf benchmark instead of experiments and write the JSON report to this path (e.g. BENCH_1.json)")
		scen      = flag.String("scenario", "", "run one churn/fault scenario instead of experiments; comma-separated spec, e.g. \"crash=0.1,join=0.1,loss=0.2,rounds=250\" (keys: target, rounds, epsilon, loss, crash, join, leave, rejoin, collude, collude-at, lie, partition, partition-span, partition-at, epoch-every)")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := runBench(*benchJSON, *seed, *n, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "dgsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scen != "" {
		if err := runScenario(os.Stdout, *scen, *n, *seed, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "dgsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *exp, *seed, *n, *quick, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "dgsim: %v\n", err)
		os.Exit(1)
	}
}

// runBench executes the perf-trajectory benchmark and writes its JSON report
// to path. -n overrides the scalar workload size; -quick shrinks both
// workloads for CI smoke runs.
func runBench(path string, seed uint64, n int, quick bool) error {
	cfg := sim.BenchConfig{N: n, Seed: seed}
	if quick {
		if cfg.N == 0 {
			cfg.N = 1000
		}
		cfg.VectorN = 300
		cfg.ShardN = 600
		cfg.Shards = 12
	}
	report, err := sim.RunBench(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(w io.Writer, exp string, seed uint64, n int, quick, csv bool) error {
	render := func(t *sim.Table) error {
		defer fmt.Fprintln(w)
		if csv {
			return t.RenderCSV(w)
		}
		return t.Render(w)
	}
	sizes := sim.DefaultSizes
	if quick {
		sizes = []int{100, 500, 1000}
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			res, err := sim.RunTable1(sim.Table1Config{Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.Table1Table(res))
		case "table2":
			rows, err := sim.RunTable2(sim.Table2Config{Sizes: sizes, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.Table2Table(rows))
		case "fig3":
			rows, err := sim.RunFig3(sim.Fig3Config{Sizes: sizes, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.Fig3Table(rows))
		case "fig4":
			size := n
			if size == 0 {
				size = 10000
				if quick {
					size = 1000
				}
			}
			rows, err := sim.RunFig4(sim.Fig4Config{N: size, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.Fig4Table(rows))
		case "fig5":
			size := n
			if size == 0 {
				size = 500
				if quick {
					size = 200
				}
			}
			rows, err := sim.RunCollusion(sim.CollusionConfig{N: size, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.Fig5Table(rows, "Figure 5: avg RMS error, group collusion"))
		case "fig6":
			size := n
			if size == 0 {
				size = 500
				if quick {
					size = 200
				}
			}
			rows, err := sim.RunCollusion(sim.CollusionConfig{
				N: size, GroupSizes: []int{1}, Seed: seed,
			})
			if err != nil {
				return err
			}
			return render(sim.Fig5Table(rows, "Figure 6: avg RMS error, individual collusion"))
		case "scaling":
			rows, err := sim.RunScaling(sizes, 1e-4, seed)
			if err != nil {
				return err
			}
			return render(sim.ScalingTable(rows))
		case "factor":
			size := n
			if size == 0 {
				size = 300
			}
			rows, err := sim.RunCollusionFactor(size, 0.3, 5, seed)
			if err != nil {
				return err
			}
			return render(sim.FactorTable(rows))
		case "profile":
			size := n
			if size == 0 {
				size = 10000
				if quick {
					size = 1000
				}
			}
			points, err := sim.RunProfile(sim.ProfileConfig{N: size, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.ProfileTable(points))
		case "baselines":
			size := n
			if size == 0 {
				size = 200
				if quick {
					size = 120
				}
			}
			rows, err := sim.RunBaselineCollusion(sim.BaselineCollusionConfig{N: size, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.BaselineTable(rows))
		case "whitewash":
			size := n
			if size == 0 {
				size = 150
				if quick {
					size = 100
				}
			}
			rows, err := sim.RunWhitewash(sim.WhitewashConfig{N: size, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.WhitewashTable(rows))
		case "churn":
			size := n
			if size == 0 {
				size = 1000
				if quick {
					size = 300
				}
			}
			rows, err := sim.RunChurn(sim.ChurnConfig{N: size, Seed: seed})
			if err != nil {
				return err
			}
			return render(sim.ChurnTable(rows))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if exp == "all" {
		for _, name := range []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "scaling", "factor", "whitewash", "baselines", "profile", "churn"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(exp)
}
