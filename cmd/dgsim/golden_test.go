package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./cmd/dgsim -run TestGolden -update
//
// Goldens pin the byte-exact output of dgsim at a fixed seed: every
// experiment runner derives its randomness from splittable seeded streams,
// so any drift here means a determinism regression (or an intentional
// change, in which case regenerate and review the diff). The committed
// files were generated on linux/amd64; Go permits fused multiply-add
// contraction on some other architectures, which can legitimately perturb
// low-order float digits there.
var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		run  func(w io.Writer) error
	}{
		// The worked example: ten nodes, every iteration printed.
		{"table1", func(w io.Writer) error { return run(w, "table1", 1, 0, true, false) }},
		// A size sweep in CSV mode (locks the CSV shape too).
		{"table2_csv", func(w io.Writer) error { return run(w, "table2", 1, 0, true, true) }},
		// Loss sweep at a reduced size.
		{"fig4", func(w io.Writer) error { return run(w, "fig4", 1, 300, true, false) }},
		// Theorem 5.1 flatness check at quick sizes.
		{"scaling", func(w io.Writer) error { return run(w, "scaling", 1, 0, true, false) }},
		// The churn grid (scenario engine under the sim harness).
		{"churn", func(w io.Writer) error { return run(w, "churn", 1, 200, true, false) }},
		// One full scenario: summary plus the complete event log.
		{"scenario", func(w io.Writer) error {
			return runScenario(w, "crash=0.1,join=0.1,leave=0.05,loss=0.2,rounds=80,partition-span=15,partition-at=30,collude=0.1,collude-at=50,lie=1", 150, 7, false)
		}},
		// A vector-target scenario exercises the Θ(N²) engine's churn path.
		{"scenario_vector", func(w io.Writer) error {
			return runScenario(w, "target=vector,crash=0.1,join=0.1,rejoin=0.05,loss=0.1,rounds=60", 50, 9, false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.run(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output drifted from %s (regenerate with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
					path, truncateForDiff(buf.Bytes()), truncateForDiff(want))
			}
		})
	}
}

// truncateForDiff keeps failure messages readable for large outputs.
func truncateForDiff(b []byte) []byte {
	const max = 4096
	if len(b) <= max {
		return b
	}
	return append(append([]byte(nil), b[:max]...), []byte("\n... (truncated)")...)
}
