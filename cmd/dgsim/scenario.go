package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"diffgossip/internal/scenario"
	"diffgossip/internal/sim"
)

// parseScenarioSpec turns the -scenario flag's comma-separated k=v spec into
// a scenario config. Example:
//
//	-scenario "crash=0.1,join=0.1,loss=0.2,rounds=250"
//	-scenario "target=vector,leave=0.05,partition-span=30,partition-at=40"
//	-scenario "target=service,crash=0.2,rejoin=0.1,collude=0.1,lie=1"
//
// Unset keys keep the scenario package's defaults; -n and -seed supply the
// size and seed.
func parseScenarioSpec(spec string, n int, seed uint64) (scenario.Config, error) {
	cfg := scenario.Config{N: n, Seed: seed}
	if cfg.N == 0 {
		cfg.N = 1000
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("scenario spec: %q is not key=value", part)
		}
		num := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		integer := func() (int, error) { return strconv.Atoi(val) }
		var err error
		switch key {
		case "target":
			cfg.Target, err = scenario.ParseTargetKind(val)
		case "rounds":
			cfg.Rounds, err = integer()
		case "epsilon":
			cfg.Epsilon, err = num()
		case "loss":
			cfg.LossProb, err = num()
		case "crash":
			cfg.Plan.CrashFrac, err = num()
		case "join":
			cfg.Plan.JoinFrac, err = num()
		case "leave":
			cfg.Plan.LeaveFrac, err = num()
		case "rejoin":
			cfg.Plan.RejoinFrac, err = num()
		case "collude":
			cfg.Plan.ColludeFrac, err = num()
		case "collude-at":
			cfg.Plan.ColludeRound, err = integer()
		case "lie":
			cfg.Plan.ColludeLie, err = num()
		case "partition":
			cfg.Plan.PartitionFrac, err = num()
		case "partition-span":
			cfg.Plan.PartitionSpan, err = integer()
		case "partition-at":
			cfg.Plan.PartitionRound, err = integer()
		case "epoch-every":
			cfg.EpochEvery, err = integer()
		default:
			return cfg, fmt.Errorf("scenario spec: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("scenario spec: %s: %w", key, err)
		}
	}
	if cfg.Plan.PartitionFrac > 0 && cfg.Plan.PartitionSpan == 0 {
		return cfg, fmt.Errorf("scenario spec: partition needs partition-span")
	}
	return cfg, nil
}

// runScenario executes one scenario and prints its summary table followed by
// the full deterministic event log. Output is a pure function of the spec,
// -n and -seed, which the golden tests rely on.
func runScenario(w io.Writer, spec string, n int, seed uint64, csv bool) error {
	cfg, err := parseScenarioSpec(spec, n, seed)
	if err != nil {
		return err
	}
	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	t := &sim.Table{
		Title: fmt.Sprintf("Scenario: target=%s N=%d seed=%d", cfg.Target, cfg.N, cfg.Seed),
		Columns: []string{"rounds", "converged", "alive", "n_final", "joins", "crashes",
			"leaves", "rejoins", "colluders", "final_err", "mass_drift", "violations"},
	}
	t.Append(res.Rounds, res.Converged, res.Alive, res.N, res.Joins, res.Crashes,
		res.Leaves, res.Rejoins, res.Colluders,
		fmt.Sprintf("%.2e", res.FinalErr), fmt.Sprintf("%.2e", res.MaxMassErr), len(res.Violations))
	if csv {
		// CSV mode keeps the stream machine-parseable: the summary row
		// only. The violation count is a summary column; replay the same
		// spec without -csv for the event log and violation detail.
		return t.RenderCSV(w)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "event log (%d entries):\n", len(res.Log))
	for _, line := range res.Log {
		fmt.Fprintf(w, "  %s\n", line)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(w, "VIOLATION: %s\n", v)
	}
	return nil
}
