package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEachExperimentQuick(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "scaling", "factor", "whitewash", "baselines", "profile"} {
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			// n=120 keeps the collusion/factor runs fast; quick shrinks
			// the size sweeps.
			if err := run(&buf, exp, 1, 120, true, false); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 1, 0, true, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", 1, 0, true, true); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("csv output missing commas: %q", first)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("all-experiments run in short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", 1, 100, true, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Scaling", "damping"} {
		if !strings.Contains(out, want) {
			t.Fatalf("all-run missing %q", want)
		}
	}
}
