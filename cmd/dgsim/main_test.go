package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diffgossip/internal/sim"
)

func TestRunEachExperimentQuick(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "scaling", "factor", "whitewash", "baselines", "profile", "churn"} {
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			// n=120 keeps the collusion/factor runs fast; quick shrinks
			// the size sweeps.
			if err := run(&buf, exp, 1, 120, true, false); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 1, 0, true, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", 1, 0, true, true); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("csv output missing commas: %q", first)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("all-experiments run in short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", 1, 100, true, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Scaling", "damping"} {
		if !strings.Contains(out, want) {
			t.Fatalf("all-run missing %q", want)
		}
	}
}

func TestBenchJSONWellFormed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	// Quick sizes keep the benchmark run test-fast.
	if err := runBench(path, 1, 200, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report sim.BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("BENCH json does not parse: %v", err)
	}
	if report.Schema != "diffgossip-bench/v9" {
		t.Fatalf("schema = %q", report.Schema)
	}
	if report.CPUs < 1 {
		t.Fatalf("cpus = %d", report.CPUs)
	}
	// 16 fixed rows (scalar, vector, vector-sparse, service, churn,
	// 3×sharded, 3×anti-entropy, http-latency, 2×bootstrap,
	// 2×wal-compaction) plus the v8 epoch-scaling family (two warm rows and
	// one cores row per GOMAXPROCS setting, at least three) and the six v9
	// http-front-door rows.
	if len(report.Benchmarks) < 27 {
		t.Fatalf("benchmarks = %d, want at least 27", len(report.Benchmarks))
	}
	var serviceRows, churnRows, shardedRows, handoffRows, latencyRows, bootstrapRows, walRows int
	var warmRows, coresRows int
	scaling := map[string]sim.BenchResult{}
	frontDoor := map[string]sim.BenchResult{}
	for _, b := range report.Benchmarks {
		if strings.HasPrefix(b.Name, "http-front-door/") {
			// The schema-v9 rows: the production ingress driven over
			// loopback. They report throughput and reader percentiles, not
			// gossip steps (the cluster row's steps are exchange rounds).
			frontDoor[b.Name] = b
			if !b.Converged {
				t.Fatalf("front-door row did not converge: %+v", b)
			}
			continue
		}
		if strings.HasPrefix(b.Name, "wal-compaction/") {
			// The schema-v7 size rows measure bytes, not steps: the ledger
			// file around one compaction of a fixed live cell set.
			walRows++
			if b.N <= 0 || b.History <= 0 || b.Cells <= 0 {
				t.Fatalf("wal row has no workload accounting: %+v", b)
			}
			if b.WalBytesBefore <= 0 || b.WalBytesAfter <= 0 || b.WalBytesAfter >= b.WalBytesBefore {
				t.Fatalf("wal row did not shrink the ledger: %+v", b)
			}
			continue
		}
		if b.Name == "" || b.N <= 0 || b.Steps <= 0 {
			t.Fatalf("malformed row %+v", b)
		}
		if strings.HasPrefix(b.Name, "sharded-service/") {
			// The schema-v4 rows: epoch latency vs dirty-shard fraction,
			// with the fold counter proving how much actually recomputed.
			shardedRows++
			if b.Shards <= 0 || b.DirtyShards <= 0 || b.DirtyShards > b.Shards {
				t.Fatalf("sharded row has a bad shard accounting: %+v", b)
			}
			if b.EpochNs <= 0 || b.FoldedSubjects == 0 {
				t.Fatalf("sharded row has no work recorded: %+v", b)
			}
			if !b.Converged {
				t.Fatalf("sharded row did not converge: %+v", b)
			}
			continue
		}
		if strings.HasPrefix(b.Name, "epoch-scaling/") {
			// The schema-v8 rows: warm-vs-cold campaign steps on an identical
			// dirty slice, and cold epoch latency per core count.
			if b.EpochNs <= 0 || b.FoldedSubjects == 0 || b.Shards <= 0 {
				t.Fatalf("epoch-scaling row has no work recorded: %+v", b)
			}
			if !b.Converged {
				t.Fatalf("epoch-scaling row did not converge: %+v", b)
			}
			if b.Cores > 0 {
				coresRows++
				if b.Speedup <= 0 || b.ColdStarts == 0 || b.TotalSteps <= 0 {
					t.Fatalf("cores row has no scaling accounting: %+v", b)
				}
			} else {
				warmRows++
			}
			scaling[b.Name] = b
			continue
		}
		if b.NsPerStep <= 0 {
			t.Fatalf("row %q has no timing", b.Name)
		}
		if strings.HasPrefix(b.Name, "cluster-bootstrap/") {
			// The schema-v7 join rows: snapshot-shipped bootstrap time for a
			// fresh replica against the sender's lifetime history length.
			bootstrapRows++
			if b.History <= 0 || b.Cells <= 0 || b.ConvergeNs <= 0 {
				t.Fatalf("bootstrap row has no transfer accounting: %+v", b)
			}
			if !b.Converged {
				t.Fatalf("bootstrap row did not converge: %+v", b)
			}
			continue
		}
		if strings.HasPrefix(b.Name, "cluster-antientropy/") {
			// The schema-v5 rows: hinted-handoff catch-up time against the
			// backlog buffered during a dead window.
			handoffRows++
			if b.HintedEntries <= 0 || b.ConvergeNs <= 0 {
				t.Fatalf("anti-entropy row has no handoff accounting: %+v", b)
			}
			if !b.Converged {
				t.Fatalf("anti-entropy row did not converge: %+v", b)
			}
			continue
		}
		if strings.HasPrefix(b.Name, "churn-scenario/") {
			// The churn row runs a fixed timeline with events spread over
			// its whole span, so it legitimately ends unconverged.
			churnRows++
			if b.Events <= 0 {
				t.Fatalf("churn row executed no events: %+v", b)
			}
			if b.MsgsPerNodePerStep <= 0 {
				t.Fatalf("churn row has no message metric: %+v", b)
			}
			continue
		}
		if !b.Converged {
			t.Fatalf("row %q did not converge", b.Name)
		}
		if strings.HasPrefix(b.Name, "service/") {
			serviceRows++
			if b.IngestPerSec <= 0 || b.QueryPerSec <= 0 || b.EpochNs <= 0 {
				t.Fatalf("service row missing throughput metrics: %+v", b)
			}
			continue // the service row reports throughput, not messages
		}
		if strings.HasPrefix(b.Name, "http-latency/") {
			// The schema-v6 row: per-request latency percentiles of the HTTP
			// surface, monotone by construction.
			latencyRows++
			if b.Requests <= 0 {
				t.Fatalf("latency row measured no requests: %+v", b)
			}
			if b.P50Ns <= 0 || b.P50Ns > b.P95Ns || b.P95Ns > b.P99Ns {
				t.Fatalf("latency row percentiles not monotone: %+v", b)
			}
			continue // the latency row reports percentiles, not messages
		}
		if b.MsgsPerNodePerStep <= 0 {
			t.Fatalf("row %q has no message metric", b.Name)
		}
	}
	if serviceRows != 1 || churnRows != 1 || shardedRows != 3 || handoffRows != 3 || latencyRows != 1 || bootstrapRows != 2 || walRows != 2 {
		t.Fatalf("service rows = %d, churn rows = %d, sharded rows = %d, handoff rows = %d, latency rows = %d, bootstrap rows = %d, wal rows = %d, want 1/1/3/3/1/2/2",
			serviceRows, churnRows, shardedRows, handoffRows, latencyRows, bootstrapRows, walRows)
	}
	if warmRows != 2 || coresRows < 3 {
		t.Fatalf("epoch-scaling rows = %d warm + %d cores, want 2 warm and at least 3 cores", warmRows, coresRows)
	}
	// The hardware-independent half of the v8 claim must hold wherever the
	// report was generated: the warm epoch folds the same subjects as the
	// cold one in at most a fifth of the campaign steps.
	on, off := scaling["epoch-scaling/warm=on/dirty=5%"], scaling["epoch-scaling/warm=off/dirty=5%"]
	if on.Name == "" || off.Name == "" {
		t.Fatalf("warm twin rows missing from the report")
	}
	if on.WarmStarts == 0 || off.ColdStarts == 0 || on.FoldedSubjects != off.FoldedSubjects {
		t.Fatalf("warm twins did not fold identical work: %+v vs %+v", on, off)
	}
	if 5*on.TotalSteps > off.TotalSteps {
		t.Fatalf("warm epoch spent %d campaign steps, want at most a fifth of cold's %d", on.TotalSteps, off.TotalSteps)
	}

	// The v9 front-door rows. CI bench-smoke holds the strict throughput and
	// tail-latency ratios (batch ≥ 5× single, bp p99 ≤ 0.5× nobp) on a
	// dedicated run; here — where the suite may run under the race detector —
	// the claims are checked directionally with slack.
	single, batch := frontDoor["http-front-door/ingest=single"], frontDoor["http-front-door/ingest=batch"]
	nobp, bp := frontDoor["http-front-door/overload=nobp"], frontDoor["http-front-door/overload=bp"]
	cond, clus := frontDoor["http-front-door/reads=conditional"], frontDoor["http-front-door/cluster=3"]
	if len(frontDoor) != 6 || single.Name == "" || batch.Name == "" || nobp.Name == "" || bp.Name == "" || cond.Name == "" || clus.Name == "" {
		t.Fatalf("front-door rows incomplete: %d rows %v", len(frontDoor), frontDoor)
	}
	for _, b := range []sim.BenchResult{single, batch, nobp, bp, cond} {
		if b.Requests <= 0 || b.P50Ns <= 0 || b.P50Ns > b.P95Ns || b.P95Ns > b.P99Ns {
			t.Fatalf("front-door row has no monotone request accounting: %+v", b)
		}
	}
	if single.AcceptedRatings != single.Requests || batch.AcceptedRatings <= batch.Requests {
		t.Fatalf("ingest rows accepted/requests inconsistent: single %+v, batch %+v", single, batch)
	}
	if batch.IngestPerSec < 3*single.IngestPerSec {
		t.Fatalf("batch ingest %.0f ratings/s vs single %.0f — batching amortized nothing",
			batch.IngestPerSec, single.IngestPerSec)
	}
	if nobp.ShedRequests != 0 || bp.ShedRequests <= 0 || bp.AcceptedRatings <= 0 {
		t.Fatalf("overload rows shed accounting wrong: nobp %+v, bp %+v", nobp, bp)
	}
	if bp.P99Ns >= nobp.P99Ns {
		t.Fatalf("backpressure did not improve read p99: bp %dns vs nobp %dns", bp.P99Ns, nobp.P99Ns)
	}
	if cond.NotModified <= 0 || cond.NotModified >= cond.Requests {
		t.Fatalf("conditional row 304 accounting wrong: %+v", cond)
	}
	if clus.Steps <= 0 || clus.ConvergeNs <= 0 || clus.AcceptedRatings <= 0 || clus.IngestPerSec <= 0 {
		t.Fatalf("cluster row has no convergence accounting: %+v", clus)
	}
}
