// Command dgnet generates and inspects the power-law overlays the simulator
// runs on: degree distribution, power-law exponent, diameter, differential
// fan-out profile.
//
// Usage:
//
//	dgnet -n 10000 -m 2 -seed 7
//	dgnet -n 10000 -edges            # dump the edge list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"diffgossip/internal/graph"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "number of nodes")
		m     = flag.Int("m", 2, "edges per arriving node (preferential attachment)")
		seed  = flag.Uint64("seed", 1, "generator seed")
		edges = flag.Bool("edges", false, "dump the edge list instead of statistics")
	)
	flag.Parse()

	g, err := graph.PreferentialAttachment(graph.PAConfig{N: *n, M: *m, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgnet: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *edges {
		printEdges(w, g)
		return
	}
	printStats(w, g, *m)
}

// printEdges dumps the canonical edge list.
func printEdges(w io.Writer, g *graph.Graph) {
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d\n", e[0], e[1])
	}
}

// printStats reports the structural summary used to sanity-check generated
// overlays against measured P2P topologies.
func printStats(w io.Writer, g *graph.Graph, dmin int) {
	maxDeg, hub := g.MaxDegree()
	fmt.Fprintf(w, "nodes              %d\n", g.N())
	fmt.Fprintf(w, "edges              %d\n", g.M())
	fmt.Fprintf(w, "connected          %v\n", g.Connected())
	fmt.Fprintf(w, "mean degree        %.2f\n", g.MeanDegree())
	fmt.Fprintf(w, "max degree         %d (node %d)\n", maxDeg, hub)
	fmt.Fprintf(w, "diameter (approx)  %d\n", g.DiameterApprox())
	fmt.Fprintf(w, "power-law gamma    %.2f (MLE, dmin=%d)\n", g.PowerLawExponent(dmin), dmin)
	fmt.Fprintf(w, "assortativity      %.3f\n", g.AssortativityByDegree())

	// Differential fan-out profile: how many nodes push k shares per step.
	ks := g.DifferentialKs()
	hist := map[int]int{}
	for _, k := range ks {
		hist[k]++
	}
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(w, "fan-out histogram  ")
	for i, k := range keys {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "k=%d:%d", k, hist[k])
	}
	fmt.Fprintln(w)

	// Degree histogram head (top of the tail tells the power-node story).
	dh := g.DegreeHistogram()
	fmt.Fprintf(w, "degree histogram   ")
	printed := 0
	for d, c := range dh {
		if c == 0 {
			continue
		}
		if printed >= 8 {
			fmt.Fprintf(w, "...")
			break
		}
		if printed > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "d=%d:%d", d, c)
		printed++
	}
	fmt.Fprintln(w)
}
