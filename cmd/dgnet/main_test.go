package main

import (
	"bytes"
	"strings"
	"testing"

	"diffgossip/internal/graph"
)

func TestPrintStats(t *testing.T) {
	g := graph.MustPA(500, 2, 1)
	var buf bytes.Buffer
	printStats(&buf, g, 2)
	out := buf.String()
	for _, want := range []string{
		"nodes              500",
		"connected          true",
		"power-law gamma",
		"fan-out histogram",
		"degree histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestPrintEdges(t *testing.T) {
	g := graph.Figure2()
	var buf bytes.Buffer
	printEdges(&buf, g)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != g.M() {
		t.Fatalf("edge dump has %d lines, want %d", len(lines), g.M())
	}
	if lines[0] != "0 1" {
		t.Fatalf("first edge %q", lines[0])
	}
}
