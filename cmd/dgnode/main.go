// Command dgnode runs one differential-gossip peer over real TCP — the
// deployable form of the paper's Algorithm 1. Start one process per peer,
// point each at its overlay neighbours, and every process converges to the
// network-wide aggregate of the supplied values.
//
// Example (three peers on a triangle, run in three shells):
//
//	dgnode -listen 127.0.0.1:7001 -peers 127.0.0.1:7002,127.0.0.1:7003 -value 0.2
//	dgnode -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7003 -value 0.5
//	dgnode -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002 -value 0.8
//
// Each prints the converged estimate (0.5) when it and its neighbours agree.
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"diffgossip/internal/agent"
	"diffgossip/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "address to listen on")
		peers   = flag.String("peers", "", "comma-separated neighbour addresses")
		value   = flag.Float64("value", 0, "this node's direct-trust feedback (y0)")
		weight  = flag.Float64("weight", 1, "this node's gossip weight (1 = rater)")
		subject = flag.Int("subject", 0, "subject id the gossip concerns")
		epsilon = flag.Float64("epsilon", 1e-4, "convergence tolerance ξ")
		timeout = flag.Duration("timeout", 2*time.Minute, "give up after this long")
		tick    = flag.Duration("tick", 20*time.Millisecond, "gossip tick interval")
		seed    = flag.Uint64("seed", 0, "seed for neighbour selection (0 = draw a random seed and print it)")
	)
	flag.Parse()

	if err := run(*listen, *peers, *value, *weight, *subject, *epsilon, *timeout, *tick, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "dgnode: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, peers string, value, weight float64, subject int,
	epsilon float64, timeout, tick time.Duration, seed uint64) error {

	nbrs := strings.Split(peers, ",")
	var clean []string
	for _, p := range nbrs {
		if p = strings.TrimSpace(p); p != "" {
			clean = append(clean, p)
		}
	}
	if len(clean) == 0 {
		return fmt.Errorf("no -peers given")
	}

	// Default seed: drawn randomly and printed, so every run is reproducible
	// with -seed. (Hashing the bound listen address, as earlier versions
	// did, is silently nondeterministic with an ephemeral port like
	// 127.0.0.1:0 — the OS picks a different port, hence a different seed,
	// each run.)
	if seed == 0 {
		seed = randomSeed()
		fmt.Printf("seed %d (rerun with -seed %d to reproduce)\n", seed, seed)
	}

	tr, err := transport.ListenTCP(listen)
	if err != nil {
		return err
	}
	defer tr.Close()
	fmt.Printf("listening on %s, gossiping with %d neighbours\n", tr.Addr(), len(clean))
	a, err := agent.New(agent.Config{
		Transport:    tr,
		Neighbors:    clean,
		Subject:      subject,
		Y0:           value,
		G0:           weight,
		Epsilon:      epsilon,
		TickInterval: tick,
		Seed:         seed,
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := a.Run(ctx)
	if err != nil {
		return fmt.Errorf("gossip did not finish: %w (estimate so far %.6f after %d ticks)",
			err, res.Estimate, res.Ticks)
	}
	fmt.Printf("converged: estimate %.6f (ticks %d, shares sent %d, lost %d)\n",
		res.Estimate, res.Ticks, res.SharesSent, res.SharesLost)
	return nil
}

// randomSeed draws a nonzero random seed, falling back to the clock if the
// system entropy source is unavailable.
func randomSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}
