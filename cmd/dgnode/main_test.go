package main

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRandomSeedNonzeroAndVarying: the default seed is drawn explicitly (and
// printed) rather than hashed from the bound listen address, which was
// silently nondeterministic for ephemeral-port listens like 127.0.0.1:0.
func TestRandomSeedNonzeroAndVarying(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 8; i++ {
		s := randomSeed()
		if s == 0 {
			t.Fatal("randomSeed returned 0, which would re-trigger derivation")
		}
		seen[s] = true
	}
	if len(seen) == 1 {
		t.Fatal("randomSeed returned the same value 8 times")
	}
}

func TestRunRejectsNoPeers(t *testing.T) {
	if err := run("127.0.0.1:0", "", 0.5, 1, 0, 1e-3, time.Second, time.Millisecond, 1); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if err := run("127.0.0.1:0", " , ,", 0.5, 1, 0, 1e-3, time.Second, time.Millisecond, 1); err == nil {
		t.Fatal("blank peer list accepted")
	}
}

func TestRunRejectsBadListenAddr(t *testing.T) {
	if err := run("256.256.256.256:99999", "127.0.0.1:1", 0.5, 1, 0, 1e-3, time.Second, time.Millisecond, 1); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestThreeNodeCluster(t *testing.T) {
	// Three dgnode processes-worth of logic on fixed local ports.
	ports := []string{"127.0.0.1:39411", "127.0.0.1:39412", "127.0.0.1:39413"}
	values := []float64{0.2, 0.5, 0.8}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		var peers []string
		for j := 0; j < 3; j++ {
			if j != i {
				peers = append(peers, ports[j])
			}
		}
		wg.Add(1)
		go func(i int, peerList string) {
			defer wg.Done()
			errs[i] = run(ports[i], peerList, values[i], 1, 0,
				1e-4, 30*time.Second, 2*time.Millisecond, uint64(i+1))
		}(i, strings.Join(peers, ","))
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}
