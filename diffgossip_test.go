package diffgossip_test

import (
	"math"
	"testing"

	"diffgossip"
)

func TestPublicQuickstartFlow(t *testing.T) {
	g, err := diffgossip.NewPANetwork(200, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := diffgossip.NewTrustMatrix(200)
	for i := 0; i < 200; i += 2 {
		if i != 9 {
			if err := tm.Set(i, 9, 0.8); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := diffgossip.AggregateGlobal(g, tm, 9, diffgossip.Params{Epsilon: 1e-6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("public API aggregation did not converge")
	}
	want := diffgossip.GlobalReference(tm, 9)
	if math.Abs(want-0.8) > 1e-12 {
		t.Fatalf("reference = %v, want 0.8", want)
	}
	for i, v := range res.PerNode {
		if math.Abs(v-want) > 1e-3 {
			t.Fatalf("node %d estimate %v, want %v", i, v, want)
		}
	}
}

func TestPublicGCLRFlow(t *testing.T) {
	g, err := diffgossip.NewPANetwork(100, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tm := diffgossip.NewTrustMatrix(100)
	for i := 1; i < 100; i++ {
		if err := tm.Set(i, 0, float64(i%10)/10); err != nil {
			t.Fatal(err)
		}
	}
	p := diffgossip.Params{Epsilon: 1e-8, Seed: 4}
	res, err := diffgossip.AggregateGCLR(g, tm, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.PerNode {
		want := diffgossip.GCLRReference(g, tm, i, 0, p)
		if math.Abs(v-want) > 5e-3 {
			t.Fatalf("observer %d: %v vs reference %v", i, v, want)
		}
	}
}

func TestPublicAllVariants(t *testing.T) {
	g, err := diffgossip.NewPANetwork(60, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	tm := diffgossip.NewTrustMatrix(60)
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			if i != j && (i+j)%3 == 0 {
				if err := tm.Set(i, j, 0.5); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	p := diffgossip.Params{Epsilon: 1e-6, Seed: 6}
	all, err := diffgossip.AggregateGlobalAll(g, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Converged {
		t.Fatal("GlobalAll did not converge")
	}
	gclr, err := diffgossip.AggregateGCLRAll(g, tm, p)
	if err != nil {
		t.Fatal(err)
	}
	if !gclr.Converged {
		t.Fatal("GCLRAll did not converge")
	}
	for j := 0; j < 60; j++ {
		want := diffgossip.GlobalReference(tm, j)
		if want == 0 {
			continue
		}
		if math.Abs(all.Reputation[0][j]-want) > 1e-2 {
			t.Fatalf("GlobalAll[0][%d] = %v, want %v", j, all.Reputation[0][j], want)
		}
	}
}

func TestPublicProtocols(t *testing.T) {
	g, err := diffgossip.NewPANetwork(150, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	tm := diffgossip.NewTrustMatrix(150)
	for i := 1; i < 150; i++ {
		if err := tm.Set(i, 0, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	for _, proto := range []diffgossip.Protocol{
		diffgossip.DifferentialPush, diffgossip.NormalPush,
		diffgossip.CeilPush,
	} {
		res, err := diffgossip.AggregateGlobal(g, tm, 0, diffgossip.Params{
			Epsilon: 1e-5, Seed: 8, Protocol: proto,
		})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", proto)
		}
	}
	res, err := diffgossip.AggregateGlobal(g, tm, 0, diffgossip.Params{
		Epsilon: 1e-5, Seed: 8, Protocol: diffgossip.FixedPush, FixedK: 2,
	})
	if err != nil || !res.Converged {
		t.Fatalf("FixedPush: %v (converged %v)", err, res != nil && res.Converged)
	}
}

func TestFigure2Network(t *testing.T) {
	g := diffgossip.Figure2Network()
	if g.N() != 10 || g.M() != 16 {
		t.Fatalf("Figure2: N=%d M=%d", g.N(), g.M())
	}
}

func TestNewNetworkManualEdges(t *testing.T) {
	g := diffgossip.NewNetwork(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	tm := diffgossip.NewTrustMatrix(3)
	if err := tm.Set(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	res, err := diffgossip.AggregateGlobal(g, tm, 2, diffgossip.Params{Epsilon: 1e-6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.PerNode {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("node %d estimate %v, want 1", i, v)
		}
	}
}

func TestDefaultWeightParamsExported(t *testing.T) {
	if diffgossip.DefaultWeightParams.A != 10 || diffgossip.DefaultWeightParams.B != 1 {
		t.Fatalf("DefaultWeightParams = %+v", diffgossip.DefaultWeightParams)
	}
}
