package diffgossip_test

import (
	"math"
	"testing"
	"time"

	"diffgossip"
)

// TestServicePublicAPI drives the public Service type end to end: ingest,
// epoch, lock-free reads, and the personalised view.
func TestServicePublicAPI(t *testing.T) {
	g, err := diffgossip.NewPANetwork(50, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := diffgossip.NewService(diffgossip.ServiceConfig{
		Graph:  g,
		Params: diffgossip.Params{Epsilon: 1e-6, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if _, err := svc.Submit(4, 11, 0.8); err != nil {
		t.Fatal(err)
	}
	seq, err := svc.Submit(6, 11, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}

	view, ran, err := svc.RunEpoch()
	if err != nil || !ran {
		t.Fatalf("epoch: ran=%v err=%v", ran, err)
	}
	if view.Seq() != seq {
		t.Fatalf("view folded seq %d, want %d", view.Seq(), seq)
	}
	if view.SubjectSeq(11) != seq {
		t.Fatalf("subject 11 folded seq %d, want %d", view.SubjectSeq(11), seq)
	}
	got, _, err := svc.Reputation(11)
	if err != nil {
		t.Fatal(err)
	}
	want := diffgossip.GlobalReference(view, 11)
	if math.Abs(got-want) > 1e-2 {
		t.Fatalf("reputation %v, reference %v", got, want)
	}
	if math.Abs(want-0.6) > 1e-12 {
		t.Fatalf("reference %v, want 0.6", want)
	}
	if v, _, err := svc.PersonalReputation(4, 11); err != nil || v < 0 || v > 1 {
		t.Fatalf("personal view = (%v, %v)", v, err)
	}
}

// TestServiceSchedulerPublicAPI exercises the background scheduler through
// the public surface.
func TestServiceSchedulerPublicAPI(t *testing.T) {
	g, err := diffgossip.NewPANetwork(30, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := diffgossip.NewService(diffgossip.ServiceConfig{
		Graph:         g,
		Params:        diffgossip.Params{Epsilon: 1e-5, Seed: 9},
		EpochInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Submit(1, 2, 0.9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.View().Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if v, _, _ := svc.Reputation(2); math.Abs(v-0.9) > 1e-2 {
		t.Fatalf("reputation = %v, want ≈0.9", v)
	}
}
