// Service: run the reputation system as a long-lived component — feedback
// streams in over time, a background scheduler folds it into differential-
// gossip epochs, and reads stay lock-free against the latest published
// snapshot. This is the library form of what cmd/dgserve exposes over HTTP.
package main

import (
	"fmt"
	"log"
	"time"

	"diffgossip"
)

func main() {
	const n = 300

	g, err := diffgossip.NewPANetwork(n, 2, 42)
	if err != nil {
		log.Fatal(err)
	}

	// An epoch every 200ms; pass Dir to make the ledger and snapshots
	// survive restarts.
	svc, err := diffgossip.NewService(diffgossip.ServiceConfig{
		Graph:         g,
		Params:        diffgossip.Params{Epsilon: 1e-6, Seed: 1},
		EpochInterval: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Feedback arrives: node 7 serves half the network well; node 13 free
	// rides. Submissions are cheap appends — no epoch work happens here.
	var lastSeq uint64
	for i := 0; i < n; i++ {
		if i%2 == 0 && i != 7 {
			if lastSeq, err = svc.Submit(i, 7, 0.9); err != nil {
				log.Fatal(err)
			}
		}
		if i%3 == 0 && i != 13 {
			if lastSeq, err = svc.Submit(i, 13, 0.05); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("submitted feedback up to ledger seq %d; pending %d\n", lastSeq, svc.Pending())

	// Reads before the first epoch see the boot shard snapshots (no
	// evidence yet).
	v, view, _ := svc.Reputation(7)
	fmt.Printf("epoch %d: rep(7)=%.4f (feedback not yet folded)\n", view.Epoch(), v)

	// Wait for the scheduler to fold our writes: the published view's
	// folded Seq reaches the last sequence number Submit returned.
	for svc.View().Seq() < lastSeq {
		time.Sleep(10 * time.Millisecond)
	}

	view = svc.View()
	fmt.Printf("epoch %d published: %d gossip steps, converged=%v, %.1fms compute\n",
		view.Epoch(), view.Steps(), view.Converged(), float64(view.ElapsedNs())/1e6)
	for _, subject := range []int{7, 13} {
		v, _, err := svc.Reputation(subject)
		if err != nil {
			log.Fatal(err)
		}
		// A View doubles as a TrustReader over the frozen shard columns, so
		// the exact reference evaluates against what the epoch actually saw.
		exact := diffgossip.GlobalReference(view, subject)
		fmt.Printf("  rep(%3d) = %.4f (exact %.4f, %d raters)\n",
			subject, v, exact, view.Raters(subject))
	}

	// The personalised (GCLR) view: node 0 rated node 7 directly, so its
	// confidence-weighted estimate differs from a stranger's.
	mine, _, _ := svc.PersonalReputation(0, 7)
	stranger, _, _ := svc.PersonalReputation(13, 7)
	fmt.Printf("  rep(7) as seen by node 0: %.4f; by node 13: %.4f\n", mine, stranger)
}
