// Ranking: pair differential gossip aggregation with the space-efficient
// reputation ranking the paper cites from GossipTrust — per-band Bloom
// filters — and compare the DGT reputations against the EigenTrust and
// PowerTrust baselines on the same trust data.
package main

import (
	"fmt"
	"log"

	"diffgossip"
	"diffgossip/internal/baseline"
	"diffgossip/internal/rank"
	"diffgossip/internal/trust"
)

func main() {
	const n = 300

	g, err := diffgossip.NewPANetwork(n, 2, 51)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trust.GenerateWorkload(trust.WorkloadConfig{
		N: n, Density: 0.15, NeighborDensity: 1, Adjacent: g.HasEdge,
		FreeRiderFrac: 0.2, Seed: 52,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate with differential gossip.
	all, err := diffgossip.AggregateGlobalAll(g, w.Matrix, diffgossip.Params{Epsilon: 1e-4, Seed: 53})
	if err != nil {
		log.Fatal(err)
	}
	rep := make([]float64, n)
	for j := 0; j < n; j++ {
		rep[j] = all.Reputation[0][j]
	}

	// Bucket into bands with Bloom filters (a few bits per peer instead of
	// a sorted vector).
	r, err := rank.NewRanking(rep, []float64{0.3, 0.6, 0.8}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reputation ranking: %d Bloom-backed bands\n", r.NumBands())
	for b := 0; b < r.NumBands(); b++ {
		fmt.Printf("  band %d: %d peers\n", b, r.BandCount(b))
	}

	top := rank.TopK(rep, 5)
	fmt.Printf("top-5 by DGT reputation: %v\n", top)
	for _, id := range top {
		fmt.Printf("  peer %3d: rep %.3f, true decency %.3f, top band? %v\n",
			id, rep[id], w.Decency[id], r.InBand(id, r.NumBands()-1))
	}

	// Baselines on the same data.
	et, err := baseline.EigenTrust(w.Matrix, baseline.EigenTrustConfig{Alpha: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	pt, err := baseline.PowerTrust(w.Matrix, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline comparison (top-5 sets):\n")
	fmt.Printf("  DGT:        %v\n", rank.TopK(rep, 5))
	fmt.Printf("  EigenTrust: %v (converged in %d iters)\n", rank.TopK(et.Reputation, 5), et.Iterations)
	fmt.Printf("  PowerTrust: %v\n", rank.TopK(pt, 5))

	// Free riders must sink to the bottom band under all three schemes.
	sunk := 0
	riders := 0
	for id := 0; id < n; id++ {
		if !w.FreeRider[id] {
			continue
		}
		riders++
		if r.BandOfPeer(id) == 0 {
			sunk++
		}
	}
	fmt.Printf("\nfree riders in bottom band: %d/%d\n", sunk, riders)
}
