// Collusion: reproduce the paper's §5.2 threat model in miniature. A third of
// the network colludes in groups — members gossip reputation 1 for each other
// and 0 for everyone else. The confidence-weighted aggregation (GCLR,
// eq. 6) damps the induced error relative to unweighted gossip by the
// factor of eq. (17).
package main

import (
	"fmt"
	"log"

	"diffgossip"
	"diffgossip/internal/collusion"
	"diffgossip/internal/core"
	"diffgossip/internal/metrics"
	"diffgossip/internal/trust"
)

func main() {
	const (
		n        = 200
		fraction = 0.3
		group    = 5
	)

	g, err := diffgossip.NewPANetwork(n, 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trust.GenerateWorkload(trust.WorkloadConfig{
		N: n, Density: 0.2, NeighborDensity: 1, Adjacent: g.HasEdge, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	honest := w.Matrix

	asg, err := collusion.Model{N: n, Fraction: fraction, GroupSize: group, Seed: 13}.Assign()
	if err != nil {
		log.Fatal(err)
	}
	reported, err := asg.Reported(honest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d colluders in %d groups of %d lie into the gossip\n",
		asg.NumColluders(), len(asg.Members), group)

	for _, mode := range []struct {
		name    string
		weights trust.WeightParams
	}{
		{"unweighted (GossipTrust-style)", trust.WeightParams{A: 1, B: 1}},
		{"confidence-weighted (DGT)", trust.DefaultWeightParams},
	} {
		p := core.Params{Epsilon: 1e-5, Weights: mode.weights, Seed: 14}
		ref, err := core.GCLRAllFromReports(g, honest, honest, p)
		if err != nil {
			log.Fatal(err)
		}
		atk, err := core.GCLRAllFromReports(g, honest, reported, p)
		if err != nil {
			log.Fatal(err)
		}
		rms, err := metrics.AvgRMSRelError(atk.Reputation, ref.Reputation)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s avg RMS error %.4f\n", mode.name, rms)
	}

	// Eq. (17) predicts the damping at each observer.
	obs := 0
	f := collusion.DampingFactor(honest, obs, honest.InteractedWith(obs), trust.DefaultWeightParams)
	fmt.Printf("analytic damping factor at node %d (eq. 17): %.3f\n", obs, f)
}
