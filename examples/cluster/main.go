// Cluster: federate three reputation services into one system — each node
// ingests its own clients' feedback, an anti-entropy exchange replicates the
// ledgers (here over the in-memory hub; cmd/dgserve does the same over TCP),
// and every node independently folds the shared history into identical
// reputations. This is the §3 system model of the paper run end to end:
// feedback held by many peers, one converged global view.
package main

import (
	"fmt"
	"log"
	"reflect"

	"diffgossip/internal/cluster"
	"diffgossip/internal/core"
	"diffgossip/internal/graph"
	"diffgossip/internal/service"
	"diffgossip/internal/transport"
)

func main() {
	const (
		n        = 200
		replicas = 3
	)

	// One overlay, one base seed, shared by every replica: with
	// FixedEpochSeed, converged replicas serve bit-identical values.
	g, err := graph.PreferentialAttachment(graph.PAConfig{N: n, M: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	hub := transport.NewHub()
	svcs := make([]*service.Service, replicas)
	nodes := make([]*cluster.Node, replicas)
	names := []string{"node-a", "node-b", "node-c"}
	for i := range svcs {
		svcs[i], err = service.New(service.Config{
			Graph:          g,
			Params:         core.Params{Epsilon: 1e-6, Seed: 1},
			Shards:         4,
			Replicate:      true,
			FixedEpochSeed: true,
			// Origin must match the cluster transport address: it is the
			// node's identity in every entry's LWW tag.
			Origin: names[i],
		})
		if err != nil {
			log.Fatal(err)
		}
		defer svcs[i].Close()
		ep, err := hub.Endpoint(names[i])
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		var peers []string
		for j, nm := range names {
			if j != i {
				peers = append(peers, nm)
			}
		}
		if nodes[i], err = cluster.New(cluster.Config{Service: svcs[i], Transport: ep, Peers: peers}); err != nil {
			log.Fatal(err)
		}
	}

	// Clients rate through their home node: node 7 earns high trust from
	// clients of all three replicas, node 13 free rides everywhere.
	for i := 0; i < n; i++ {
		home := svcs[i%replicas]
		if i%2 == 0 && i != 7 {
			if _, err := home.Submit(i, 7, 0.9); err != nil {
				log.Fatal(err)
			}
		}
		if i%5 == 0 && i != 13 {
			if _, err := home.Submit(i, 13, 0.1); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i, svc := range svcs {
		fmt.Printf("%s ingested %d entries locally\n", names[i], svc.Pending())
	}

	// Anti-entropy until every node's watermarks agree (equal watermark maps
	// mean everyone holds everything), then one epoch each.
	for round := 0; ; round++ {
		for _, nd := range nodes {
			nd.Exchange()
		}
		for pass := 0; pass < 2; pass++ {
			for _, nd := range nodes {
				nd.Drain()
			}
		}
		agreed := true
		for _, nd := range nodes[1:] {
			agreed = agreed && reflect.DeepEqual(nodes[0].Stats().Marks, nd.Stats().Marks)
		}
		if agreed {
			fmt.Printf("watermarks agreed after %d anti-entropy rounds: %v\n", round+1, nodes[0].Stats().Marks)
			break
		}
		if round > 100 {
			log.Fatal("cluster did not converge")
		}
	}
	for _, svc := range svcs {
		if _, _, err := svc.RunEpoch(); err != nil {
			log.Fatal(err)
		}
	}

	for _, subject := range []int{7, 13} {
		fmt.Printf("subject %d:\n", subject)
		var first float64
		for i, svc := range svcs {
			rep, view, err := svc.Reputation(subject)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s serves %.6f (%d raters)\n", names[i], rep, view.Raters(subject))
			if i == 0 {
				first = rep
			} else if rep != first {
				log.Fatalf("replicas diverged on subject %d", subject)
			}
		}
	}
	fmt.Println("all replicas bit-identical ✓")
}
