// Quickstart: build a power-law overlay, record some direct-interaction
// trust, and aggregate reputations with differential gossip — the smallest
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"diffgossip"
)

func main() {
	const n = 500

	// 1. A power-law overlay, as unstructured P2P networks form in
	// practice (preferential attachment, m = 2).
	g, err := diffgossip.NewPANetwork(n, 2, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Direct-interaction trust: node 7 serves everyone well, node 13 is
	// a free rider. Each overlay neighbour has transacted with both.
	t := diffgossip.NewTrustMatrix(n)
	for i := 0; i < n; i++ {
		if i == 7 || i == 13 {
			continue
		}
		if i%2 == 0 {
			must(t.Set(i, 7, 0.9))
		}
		if i%3 == 0 {
			must(t.Set(i, 13, 0.05))
		}
	}

	// 3. Aggregate the reputation of both subjects with Algorithm 1.
	for _, subject := range []int{7, 13} {
		res, err := diffgossip.AggregateGlobal(g, t, subject, diffgossip.Params{
			Epsilon: 1e-5,
			Seed:    1,
		})
		if err != nil {
			log.Fatal(err)
		}
		exact := diffgossip.GlobalReference(t, subject)
		fmt.Printf("subject %3d: reputation %.4f (exact %.4f) — converged in %d gossip steps, %v\n",
			subject, res.PerNode[0], exact, res.Steps, res.Converged)
	}

	// 4. The same aggregation for every node at once (variant 3).
	all, err := diffgossip.AggregateGlobalAll(g, t, diffgossip.Params{Epsilon: 1e-4, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-subjects run: %d steps; node 0 sees rep(7)=%.4f rep(13)=%.4f\n",
		all.Steps, all.Reputation[0][7], all.Reputation[0][13])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
