// Filesharing: the workload the paper motivates — a P2P file-sharing network
// with free riders. Peers flood queries, transfer files, grade service
// quality into direct trust, and periodically aggregate reputations with
// differential gossip. Once aggregated reputation is live, free riders get
// visibly worse service than contributors.
package main

import (
	"fmt"
	"log"

	"diffgossip"
	"diffgossip/internal/p2p"
)

func main() {
	const n = 200

	g, err := diffgossip.NewPANetwork(n, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := p2p.DefaultConfig(g, 8)
	cfg.FreeRiderFrac = 0.3
	cfg.QueriesPerRound = 0.8
	net, err := p2p.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	// Phase 1: no reputation system — everything rides on the bootstrap
	// allowance for strangers.
	if err := net.RunRounds(15); err != nil {
		log.Fatal(err)
	}
	before := net.Stats()
	fmt.Printf("before aggregation: honest avg quality %.3f, free-rider avg quality %.3f\n",
		before.HonestAvgQuality(), before.FreeRiderAvgQuality())

	// Phase 2: aggregate the accumulated direct trust with differential
	// gossip and hand every peer the global reputation vector.
	tm := net.TrustSnapshot()
	fmt.Printf("direct trust entries accumulated: %d\n", tm.NumEntries())
	all, err := diffgossip.AggregateGlobalAll(g, tm, diffgossip.Params{Epsilon: 1e-4, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	rep := make([]float64, n)
	for j := 0; j < n; j++ {
		rep[j] = all.Reputation[0][j]
	}
	if err := net.SetGlobalReputation(rep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated all reputations in %d gossip steps\n", all.Steps)

	// Phase 3: reputation-gated service.
	if err := net.RunRounds(30); err != nil {
		log.Fatal(err)
	}
	after := net.Stats()
	dHonest := after.QualitySumHonest - before.QualitySumHonest
	nHonest := after.TransfersHonest - before.TransfersHonest
	dFree := after.QualitySumFreeRider - before.QualitySumFreeRider
	nFree := after.TransfersFreeRider - before.TransfersFreeRider
	fmt.Printf("after aggregation:  honest avg quality %.3f, free-rider avg quality %.3f\n",
		safeDiv(dHonest, nHonest), safeDiv(dFree, nFree))
	fmt.Printf("totals: %d queries, %d hits, %d transfers, %d messages\n",
		after.Queries, after.Hits, after.Transfers, after.MessagesRouted)
}

func safeDiv(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
