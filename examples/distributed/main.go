// Distributed: the same differential gossip protocol over real TCP sockets on
// localhost — one agent per overlay node, each in its own goroutine with its
// own listener, no shared memory. Every agent converges to the network-wide
// average of the initial values.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"diffgossip"
	"diffgossip/internal/agent"
	"diffgossip/internal/transport"
)

func main() {
	const n = 12

	g, err := diffgossip.NewPANetwork(n, 2, 31)
	if err != nil {
		log.Fatal(err)
	}

	// One TCP listener per agent.
	trs := make([]*transport.TCPTransport, n)
	for i := range trs {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
	}

	// Initial direct-trust values to average.
	xs := make([]float64, n)
	truth := 0.0
	for i := range xs {
		xs[i] = float64(i) / float64(n)
		truth += xs[i]
	}
	truth /= n
	fmt.Printf("%d TCP agents on a PA overlay; true mean %.6f\n", n, truth)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	results := make([]agent.Result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		nbrs := make([]string, 0, g.Degree(i))
		for _, v := range g.Neighbors(i) {
			nbrs = append(nbrs, trs[v].Addr())
		}
		a, err := agent.New(agent.Config{
			Transport:    trs[i],
			Neighbors:    nbrs,
			Y0:           xs[i],
			G0:           1,
			Epsilon:      1e-4,
			TickInterval: 5 * time.Millisecond,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, a *agent.Agent) {
			defer wg.Done()
			res, err := a.Run(ctx)
			if err != nil {
				log.Printf("agent %d: %v", i, err)
			}
			results[i] = res
		}(i, a)
	}
	wg.Wait()

	worst := 0.0
	for i, r := range results {
		err := math.Abs(r.Estimate - truth)
		if err > worst {
			worst = err
		}
		fmt.Printf("  agent %2d @ %-21s estimate %.6f (err %.1e, %d ticks)\n",
			i, trs[i].Addr(), r.Estimate, err, r.Ticks)
	}
	fmt.Printf("all agents within %.1e of the true mean in %v\n", worst, time.Since(start).Round(time.Millisecond))
}
