// Churn: the paper's Figure 4 scenario in miniature. Peer-to-peer gossip
// loses pushes when nodes leave mid-round; the protocol re-absorbs lost
// shares at the sender so the aggregate mass is conserved, and convergence
// degrades only mildly even at 30% loss.
package main

import (
	"fmt"
	"log"
	"math"

	"diffgossip"
	"diffgossip/internal/gossip"
	"diffgossip/internal/rng"
)

func main() {
	const n = 2000

	g, err := diffgossip.NewPANetwork(n, 2, 21)
	if err != nil {
		log.Fatal(err)
	}
	src := rng.New(22)
	xs := make([]float64, n)
	truth := 0.0
	for i := range xs {
		xs[i] = src.Float64()
		truth += xs[i]
	}
	truth /= n

	fmt.Printf("true mean %.6f; differential gossip at ξ=1e-5 under packet loss:\n", truth)
	fmt.Printf("  %-6s  %-6s  %-10s  %-9s\n", "loss", "steps", "max error", "dropped")
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		res, err := gossip.Average(gossip.Config{
			Graph:    g,
			Epsilon:  1e-5,
			LossProb: loss,
			Seed:     23,
		}, xs)
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for _, est := range res.Estimates {
			if d := math.Abs(est - truth); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("  %-6.1f  %-6d  %-10.2e  %d/%d\n",
			loss, res.Steps, maxErr, res.Messages.Lost, res.Messages.Gossip)
	}
}
