// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations on the design choices DESIGN.md calls out. Each benchmark
// reports the experiment's headline quantity as a custom metric (steps,
// messages per node per step, or RMS error) alongside the usual ns/op, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's numbers and their costs in one run. The large-N
// sweeps (N = 10,000 and 50,000 of Figure 3 / Table 2) are exercised at
// reduced sizes here to keep the suite fast; cmd/dgsim runs the full sweeps.
package diffgossip_test

import (
	"testing"

	"diffgossip/internal/gossip"
	"diffgossip/internal/graph"
	"diffgossip/internal/rng"
	"diffgossip/internal/sim"
)

// BenchmarkTable1 regenerates the §4.2 worked example (10-node network,
// 8 iterations).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTable1(sim.Table1Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != 8 {
			b.Fatal("wrong iteration count")
		}
	}
}

// BenchmarkTable2 regenerates the message-overhead table; the benchmark
// metric msgs/node/step is the paper's reported quantity.
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{100, 500, 1000, 10000} {
		b.Run(byN(n), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.RunTable2(sim.Table2Config{
					Sizes:    []int{n},
					Epsilons: []float64{1e-3},
					Seed:     42,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0].MessagesPerStep
			}
			b.ReportMetric(last, "msgs/node/step")
		})
	}
}

// BenchmarkFig3 regenerates the convergence-steps figure, differential vs
// normal push, reporting gossip steps as the metric.
func BenchmarkFig3(b *testing.B) {
	for _, proto := range []gossip.Protocol{gossip.DifferentialPush, gossip.NormalPush} {
		for _, n := range []int{100, 1000, 10000} {
			b.Run(proto.String()+"/"+byN(n), func(b *testing.B) {
				var steps float64
				for i := 0; i < b.N; i++ {
					rows, err := sim.RunFig3(sim.Fig3Config{
						Sizes:     []int{n},
						Epsilons:  []float64{1e-3},
						Protocols: []gossip.Protocol{proto},
						Seed:      42,
					})
					if err != nil {
						b.Fatal(err)
					}
					steps = rows[0].Steps
				}
				b.ReportMetric(steps, "steps")
			})
		}
	}
}

// BenchmarkFig4 regenerates the packet-loss figure at a reduced N, reporting
// steps under each loss probability.
func BenchmarkFig4(b *testing.B) {
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		b.Run(byLoss(loss), func(b *testing.B) {
			var steps float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.RunFig4(sim.Fig4Config{
					N:         2000,
					Epsilons:  []float64{1e-3},
					LossProbs: []float64{loss},
					Seed:      42,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps = rows[0].Steps
			}
			b.ReportMetric(steps, "steps")
		})
	}
}

// BenchmarkFig5 regenerates the group-collusion figure, reporting the average
// RMS error of eq. (18).
func BenchmarkFig5(b *testing.B) {
	for _, frac := range []float64{0.2, 0.5} {
		b.Run(byPct(frac), func(b *testing.B) {
			var rms float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.RunCollusion(sim.CollusionConfig{
					N:          200,
					Fractions:  []float64{frac},
					GroupSizes: []int{5},
					Seed:       42,
				})
				if err != nil {
					b.Fatal(err)
				}
				rms = rows[0].AvgRMSErr
			}
			b.ReportMetric(rms, "avg-rms-err")
		})
	}
}

// BenchmarkFig6 is the individual-collusion variant (G = 1).
func BenchmarkFig6(b *testing.B) {
	for _, frac := range []float64{0.2, 0.5} {
		b.Run(byPct(frac), func(b *testing.B) {
			var rms float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.RunCollusion(sim.CollusionConfig{
					N:          200,
					Fractions:  []float64{frac},
					GroupSizes: []int{1},
					Seed:       42,
				})
				if err != nil {
					b.Fatal(err)
				}
				rms = rows[0].AvgRMSErr
			}
			b.ReportMetric(rms, "avg-rms-err")
		})
	}
}

// BenchmarkScaling supports Theorems 5.1/5.2: steps normalised by (log2 N)²
// should stay bounded.
func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(byN(n), func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.RunScaling([]int{n}, 1e-4, 42)
				if err != nil {
					b.Fatal(err)
				}
				norm = rows[0].Normalized
			}
			b.ReportMetric(norm, "steps/log2N^2")
		})
	}
}

// BenchmarkAblationRounding compares the paper's round-to-nearest fan-out
// against ceiling and fixed fan-outs (DESIGN.md §4 ablation).
func BenchmarkAblationRounding(b *testing.B) {
	g := graph.MustPA(5000, 2, 42)
	xs := randomVals(5000, 43)
	cases := []struct {
		name string
		cfg  gossip.Config
	}{
		{"round", gossip.Config{Graph: g, Protocol: gossip.DifferentialPush, Epsilon: 1e-4, Seed: 44}},
		{"ceil", gossip.Config{Graph: g, Protocol: gossip.CeilPush, Epsilon: 1e-4, Seed: 44}},
		{"fixed2", gossip.Config{Graph: g, Protocol: gossip.FixedPush, FixedK: 2, Epsilon: 1e-4, Seed: 44}},
		{"normal", gossip.Config{Graph: g, Protocol: gossip.NormalPush, Epsilon: 1e-4, Seed: 44}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var steps, msgs float64
			for i := 0; i < b.N; i++ {
				res, err := gossip.Average(c.cfg, xs)
				if err != nil {
					b.Fatal(err)
				}
				steps = float64(res.Steps)
				msgs = float64(res.Messages.Gossip)
			}
			b.ReportMetric(steps, "steps")
			b.ReportMetric(msgs, "gossip-msgs")
		})
	}
}

// BenchmarkAblationTopology contrasts the power-law overlay with a
// same-density Erdős–Rényi graph: differential push's advantage is specific
// to heavy-tailed degree distributions.
func BenchmarkAblationTopology(b *testing.B) {
	n := 2000
	xs := randomVals(n, 51)
	pa := graph.MustPA(n, 2, 50)
	er := graph.ErdosRenyi(n, float64(2*pa.M())/float64(n*(n-1)), 50)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"pa", pa}, {"erdos-renyi", er}} {
		for _, proto := range []gossip.Protocol{gossip.DifferentialPush, gossip.NormalPush} {
			b.Run(tc.name+"/"+proto.String(), func(b *testing.B) {
				var steps float64
				for i := 0; i < b.N; i++ {
					res, err := gossip.Average(gossip.Config{
						Graph: tc.g, Protocol: proto, Epsilon: 1e-4, Seed: 52,
					}, xs)
					if err != nil {
						b.Fatal(err)
					}
					steps = float64(res.Steps)
				}
				b.ReportMetric(steps, "steps")
			})
		}
	}
}

// BenchmarkAblationAsync compares the synchronous-round idealisation against
// the asynchronous random-activation schedule the deployed agent uses,
// reporting round-equivalents to the same accuracy.
func BenchmarkAblationAsync(b *testing.B) {
	g := graph.MustPA(2000, 2, 70)
	xs := randomVals(2000, 71)
	b.Run("sync", func(b *testing.B) {
		var steps float64
		for i := 0; i < b.N; i++ {
			res, err := gossip.Average(gossip.Config{Graph: g, Epsilon: 1e-4, Seed: 72}, xs)
			if err != nil {
				b.Fatal(err)
			}
			steps = float64(res.Steps)
		}
		b.ReportMetric(steps, "rounds")
	})
	b.Run("async", func(b *testing.B) {
		var rounds float64
		for i := 0; i < b.N; i++ {
			res, err := gossip.AsyncAverage(gossip.Config{Graph: g, Epsilon: 1e-4, Seed: 72}, xs)
			if err != nil {
				b.Fatal(err)
			}
			rounds = float64(res.Rounds)
		}
		b.ReportMetric(rounds, "rounds")
	})
}

// BenchmarkBaselineCollusion runs the cross-scheme collusion comparison,
// reporting DGT's normalised RMSE under attack.
func BenchmarkBaselineCollusion(b *testing.B) {
	var rmse float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunBaselineCollusion(sim.BaselineCollusionConfig{N: 150, Seed: 80})
		if err != nil {
			b.Fatal(err)
		}
		rmse = rows[0].NormRMSE
	}
	b.ReportMetric(rmse, "dgt-norm-rmse")
}

// BenchmarkWhitewash measures the whitewashing-payoff experiment.
func BenchmarkWhitewash(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunWhitewash(sim.WhitewashConfig{
			N: 100, Priors: []float64{0}, Rounds: 16, ResetEvery: 4, Seed: 81,
		})
		if err != nil {
			b.Fatal(err)
		}
		adv = rows[0].Advantage
	}
	b.ReportMetric(adv, "whitewash-advantage")
}

// BenchmarkEngineStep isolates the per-step cost of the scalar engine. The
// reported allocs/op must stay at 0 — Step is the hot path the atomic-only
// instrumentation discipline protects.
func BenchmarkEngineStep(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(byN(n), func(b *testing.B) {
			g := graph.MustPA(n, 2, 60)
			xs := randomVals(n, 61)
			g0 := make([]float64, n)
			for i := range g0 {
				g0[i] = 1
			}
			e, err := gossip.NewEngine(gossip.Config{Graph: g, Epsilon: 1e-12, Seed: 62}, xs, g0)
			if err != nil {
				b.Fatal(err)
			}
			e.Step() // warm the scratch buffers outside the measured window
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkVectorEngineStep isolates the per-step cost of the vector engine
// (dense ratings). Like the scalar engine, steady-state steps must report 0
// allocs/op.
func BenchmarkVectorEngineStep(b *testing.B) {
	for _, n := range []int{200, 500, 1000} {
		b.Run(byN(n), func(b *testing.B) {
			g := graph.MustPA(n, 2, 63)
			src := rng.New(64)
			y0 := make([][]float64, n)
			g0 := make([][]float64, n)
			buf := make([]float64, 2*n*n)
			for i := 0; i < n; i++ {
				y0[i] = buf[2*i*n : (2*i+1)*n]
				g0[i] = buf[(2*i+1)*n : (2*i+2)*n]
				for j := 0; j < n; j++ {
					y0[i][j] = src.Float64()
					g0[i][j] = 1
				}
			}
			e, err := gossip.NewVectorEngine(gossip.Config{Graph: g, Epsilon: 1e-12, Seed: 65}, y0, g0)
			if err != nil {
				b.Fatal(err)
			}
			e.Step() // warm the scratch buffers outside the measured window
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkPAGeneration measures overlay construction.
func BenchmarkPAGeneration(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(byN(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = graph.MustPA(n, 2, uint64(i))
			}
		})
	}
}

func byN(n int) string { return "N=" + itoa(n) }
func byLoss(p float64) string {
	return "loss=" + trim(p)
}
func byPct(p float64) string { return "colluding=" + trim(p) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func trim(f float64) string {
	s := []byte{}
	whole := int(f)
	s = append(s, byte('0'+whole))
	frac := int(f*10) % 10
	if frac != 0 {
		s = append(s, '.', byte('0'+frac))
	}
	return string(s)
}

func randomVals(n int, seed uint64) []float64 {
	src := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = src.Float64()
	}
	return out
}
